//! The plan executor: waves through the transactional runtime.
//!
//! Each [`Wave`] runs as one ordinary strict-2PL task built with
//! [`TaskBuilder`](occam_core::TaskBuilder): acquire the wave's devices
//! as a region, drain (when barriered), write the database attributes,
//! push configuration, undrain, restore admin status. Because a wave is
//! a task, a failure anywhere inside it triggers the existing retry and
//! rollback machinery — and after the final attempt the executor
//! mechanically applies the suggested rollback plan, so the network
//! lands on the **previous wave boundary**: a state the synthesizer's
//! model checker proved safe. Completed waves stay committed; the plan
//! can be re-synthesized from the current config and resumed.
//!
//! Publication points — the moments a new network state becomes
//! observable — are surfaced through [`WavePoint`] callbacks so a
//! verifier (the chaos `update` phase) can assert invariants at *every*
//! intermediate publication, not just the final state.

use crate::diff::UpdateOp;
use crate::obs::UpdateObs;
use crate::plan::{Plan, Wave};
use occam_core::{execute_rollback, CancelToken, RetryPolicy, Runtime, TaskState};
use occam_emunet::FuncArgs;
use occam_netdb::{attrs, AttrValue};
use std::collections::BTreeMap;

/// One publication of an intermediate network state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WavePoint {
    /// Wave `i` has drained its devices (mid-wave state: the wave is
    /// routed around and its devices are being rewritten).
    Drained(usize),
    /// Wave `i` committed (post-wave boundary state).
    Committed(usize),
}

/// The abstract step shapes a wave executes, in order. Barriered waves
/// conform to the rollback grammar's maintenance shape
/// `DRAIN → (db|push)* → UNDRAIN`; unbarriered waves are pure database
/// transactions. `wave_steps` is what the executor runs and what the
/// planner's property tests check grammar conformance against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepKind {
    /// `f_drain` over the wave region (with `UNDER_MAINTENANCE` status).
    Drain,
    /// One per-device attribute write batch.
    DbWrite,
    /// `f_push` with `admin=drained` (and the wave's firmware, if any).
    Push,
    /// `f_undrain` plus the devices' target admin status.
    Undrain,
}

/// The step sequence `execute_plan` runs for `wave`.
pub fn wave_steps(wave: &Wave) -> Vec<StepKind> {
    let barrier = wave.barrier || wave.needs_push();
    let mut steps = Vec::new();
    if barrier {
        steps.push(StepKind::Drain);
    }
    for _ in attr_batches(&wave.ops) {
        steps.push(StepKind::DbWrite);
    }
    if wave.needs_push() {
        steps.push(StepKind::Push);
    }
    if barrier {
        steps.push(StepKind::Undrain);
    }
    steps
}

/// Execution tuning.
#[derive(Clone)]
pub struct ExecOptions {
    /// Task-name prefix; wave `i` runs as `<prefix>.w<i>`.
    pub task_prefix: String,
    /// Retry policy for each wave task (transient device faults are
    /// retried with inter-attempt rollback, like any other task).
    pub retry: RetryPolicy,
    /// Cooperative cancellation: checked between waves and propagated
    /// into each wave task.
    pub cancel: Option<CancelToken>,
    /// Metrics sink.
    pub obs: Option<UpdateObs>,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            task_prefix: "planned_update".into(),
            retry: RetryPolicy::none(),
            cancel: None,
            obs: None,
        }
    }
}

/// Outcome of one plan execution.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ExecReport {
    /// Waves started.
    pub waves_attempted: usize,
    /// Waves committed.
    pub waves_committed: usize,
    /// Index of the wave that failed, when one did.
    pub failed_wave: Option<usize>,
    /// Whether the failed wave was mechanically rolled back to the
    /// previous wave boundary.
    pub rolled_back: bool,
    /// The failure, when one occurred.
    pub error: Option<String>,
}

impl ExecReport {
    /// True when every wave committed.
    pub fn ok(&self) -> bool {
        self.failed_wave.is_none() && self.error.is_none()
    }
}

/// Runs `plan` wave-by-wave through `rt`. The optional `observer` is
/// invoked at every publication point (see [`WavePoint`]); it may be
/// called again for a retried wave, since a retry re-publishes.
pub fn execute_plan(
    rt: &Runtime,
    plan: &Plan,
    opts: &ExecOptions,
    observer: Option<&dyn Fn(WavePoint)>,
) -> ExecReport {
    let mut report = ExecReport::default();
    for (i, wave) in plan.waves.iter().enumerate() {
        if let Some(tok) = &opts.cancel {
            if tok.is_cancelled() {
                report.failed_wave = Some(i);
                report.error = Some("plan cancelled between waves".into());
                return report;
            }
        }
        report.waves_attempted += 1;
        let started = std::time::Instant::now();
        let task_report = run_wave(rt, i, wave, opts, observer);
        if let Some(obs) = &opts.obs {
            obs.exec_wave_ns.record_duration(started.elapsed());
        }
        match task_report.state {
            TaskState::Completed => {
                report.waves_committed += 1;
                if let Some(obs) = &opts.obs {
                    obs.exec_waves.inc();
                    obs.exec_publications.inc();
                }
                if let Some(cb) = observer {
                    cb(WavePoint::Committed(i));
                }
            }
            state => {
                report.failed_wave = Some(i);
                report.error = Some(match &task_report.error {
                    Some(e) => format!("wave {i} ended {state:?}: {e}"),
                    None => format!("wave {i} ended {state:?}"),
                });
                if let Some(obs) = &opts.obs {
                    obs.exec_failures.inc();
                }
                if task_report.rollback.is_some() {
                    let ok = execute_rollback(&task_report, rt.db(), rt.service().as_ref());
                    match ok {
                        Ok(_) => {
                            report.rolled_back = true;
                            if let Some(obs) = &opts.obs {
                                obs.exec_rollbacks.inc();
                            }
                        }
                        Err(e) => {
                            report.error = Some(format!(
                                "{}; rollback to wave boundary failed: {e}",
                                report.error.take().unwrap_or_default()
                            ));
                        }
                    }
                } else if task_report.log.is_empty() {
                    // Nothing logged — the wave aborted before its first
                    // write, so the boundary state still holds.
                    report.rolled_back = true;
                } else {
                    // Writes were logged but no plan was derived (the log
                    // failed the rollback grammar): surface it, never
                    // claim the boundary was restored.
                    report.error = Some(format!(
                        "{}; no rollback plan: {}",
                        report.error.take().unwrap_or_default(),
                        task_report
                            .rollback_error
                            .as_deref()
                            .unwrap_or("log did not parse")
                    ));
                }
                return report;
            }
        }
    }
    report
}

/// Runs one wave as a task and returns its report.
fn run_wave(
    rt: &Runtime,
    index: usize,
    wave: &Wave,
    opts: &ExecOptions,
    observer: Option<&dyn Fn(WavePoint)>,
) -> occam_core::TaskReport {
    let barrier = wave.barrier || wave.needs_push();
    let names: Vec<&str> = wave.ops.iter().map(|o| o.device.as_str()).collect();
    let batches = attr_batches(&wave.ops);
    let status_targets = status_targets(&wave.ops);
    let firmware = wave.firmware().map(str::to_string);
    let pushes = wave.needs_push();
    let mut builder = rt.task(format!("{}.w{index}", opts.task_prefix));
    if let Some(tok) = &opts.cancel {
        builder = builder.cancel_token(tok.clone());
    }
    builder.retry(opts.retry.clone()).run(|ctx| {
        let region = ctx.network_of_devices(&names)?;
        if barrier {
            // Drain opens the offline block (Table 1); the maintenance
            // status is the first entry of the db_list the push commits,
            // so an abort anywhere in the block parses as a broken
            // cfg_change inside DRAIN and rolls back mechanically.
            region.apply("f_drain")?;
            region.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
            if let Some(obs) = &opts.obs {
                obs.exec_publications.inc();
            }
            if let Some(cb) = observer {
                cb(WavePoint::Drained(index));
            }
        }
        ctx.check_cancelled()?;
        for (attr, values) in &batches {
            region.set_per_device(values, attr)?;
        }
        if pushes {
            let args = match &firmware {
                Some(fw) => FuncArgs::one("admin", "drained").with("firmware", fw),
                None => FuncArgs::one("admin", "drained"),
            };
            region.apply_with("f_push", &args)?;
        }
        ctx.check_cancelled()?;
        if barrier {
            region.apply("f_undrain")?;
            region.set_per_device(&status_targets, attrs::DEVICE_STATUS)?;
        }
        region.close();
        Ok(())
    })
}

/// Groups the wave's attribute writes into per-attribute device→value
/// batches (the shape `set_per_device` wants), excluding `DEVICE_STATUS`
/// — admin status is applied at the end of the barrier, not mid-wave.
fn attr_batches(ops: &[UpdateOp]) -> Vec<(String, BTreeMap<String, AttrValue>)> {
    let mut by_attr: BTreeMap<String, BTreeMap<String, AttrValue>> = BTreeMap::new();
    for op in ops {
        for (attr, value) in &op.sets {
            if attr == attrs::DEVICE_STATUS {
                continue;
            }
            by_attr
                .entry(attr.clone())
                .or_default()
                .insert(op.device.clone(), value.clone());
        }
    }
    by_attr.into_iter().collect()
}

/// Every wave device's post-wave admin status: the op's explicit target
/// when the new config sets one, `ACTIVE` otherwise.
fn status_targets(ops: &[UpdateOp]) -> BTreeMap<String, AttrValue> {
    ops.iter()
        .map(|op| {
            let target = op
                .target_status()
                .cloned()
                .unwrap_or_else(|| attrs::STATUS_ACTIVE.into());
            (op.device.clone(), target)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(device: &str, fw: Option<&str>) -> UpdateOp {
        let mut sets = vec![("SNMP_COMMUNITY".into(), AttrValue::from("v2"))];
        if let Some(fw) = fw {
            sets.push((attrs::FIRMWARE_VERSION.into(), AttrValue::from(fw)));
        }
        UpdateOp {
            device: device.into(),
            sets,
            firmware: fw.map(str::to_string),
        }
    }

    #[test]
    fn barriered_wave_steps_follow_the_maintenance_grammar() {
        let wave = Wave {
            ops: vec![op("a", Some("fw-2")), op("b", Some("fw-2"))],
            barrier: true,
        };
        let steps = wave_steps(&wave);
        assert_eq!(steps.first(), Some(&StepKind::Drain));
        assert_eq!(steps.last(), Some(&StepKind::Undrain));
        assert!(steps.contains(&StepKind::Push));
    }

    #[test]
    fn db_only_wave_is_pure_writes() {
        let wave = Wave {
            ops: vec![op("a", None)],
            barrier: false,
        };
        assert_eq!(wave_steps(&wave), vec![StepKind::DbWrite]);
    }

    #[test]
    fn status_targets_default_to_active() {
        let targets = status_targets(&[op("a", None)]);
        assert_eq!(targets["a"], AttrValue::from(attrs::STATUS_ACTIVE));
    }

    #[test]
    fn device_status_is_never_written_mid_wave() {
        let mut o = op("a", Some("fw-2"));
        o.sets
            .push((attrs::DEVICE_STATUS.into(), attrs::STATUS_DRAINED.into()));
        let batches = attr_batches(&[o.clone()]);
        assert!(batches.iter().all(|(a, _)| a != attrs::DEVICE_STATUS));
        let targets = status_targets(&[o]);
        assert_eq!(targets["a"], AttrValue::from(attrs::STATUS_DRAINED));
    }
}
