//! Property tests for the update planner (DESIGN.md §15).
//!
//! Three properties over randomly generated fabric-wide changes:
//!
//! - **Subset soundness** — the synthesizer model-checks each wave with
//!   *all* its devices drained / in flux, but physically a wave drains
//!   and rewrites devices one at a time. Every partially-drained and
//!   partially-rewritten intermediate state (any subset of the wave)
//!   must also satisfy the invariants, and every operation must appear
//!   in exactly one wave.
//! - **Abort-prefix grammar conformance** — a wave aborted after any
//!   step leaves an execution log that the rollback grammar (Table 1)
//!   parses, so a mechanical rollback plan always exists.
//! - **Determinism** — synthesis is a pure function of `(ops, seed)`,
//!   and plans under different seeds still verify clean.

use occam_netdb::{attrs, AttrValue, StoreSnapshot, WalRecord};
use occam_rollback::{parse_log, LogEntry, OpStatus, OpType};
use occam_topology::{FatTree, Role};
use occam_update::{diff, wave_steps, StepKind, Synthesizer, TrafficClass, UpdateOp, Wave};
use proptest::prelude::*;

fn fabric() -> FatTree {
    FatTree::build(1, 4).expect("valid fat-tree arity")
}

/// Cross-pod classes covering every pod as an endpoint, so draining a
/// whole pod's aggregation layer is always a counterexample.
fn classes(ft: &FatTree) -> Vec<TrafficClass> {
    (0..3)
        .map(|p| {
            TrafficClass::pair(
                format!("pod{p}-pod{}", p + 1),
                ft.hosts[p][0][0],
                ft.hosts[p + 1][1][0],
                p as u64,
            )
        })
        .collect()
}

/// The switch inventory, all `ACTIVE` on the baseline firmware.
fn baseline(ft: &FatTree) -> Vec<WalRecord> {
    ft.topo
        .devices()
        .filter(|(_, d)| d.role != Role::Host)
        .map(|(_, d)| WalRecord::InsertDevice {
            name: d.name.clone(),
            attrs: vec![
                (attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into()),
                (attrs::FIRMWARE_VERSION.into(), "fw-1.0.0".into()),
            ],
        })
        .collect()
}

/// Builds the diff for a random change: a firmware push on the
/// mask-selected aggs and cores, a database-only generation bump on the
/// mask-selected ToRs.
fn ops_for_masks(ft: &FatTree, push_mask: u64, db_mask: u64) -> Vec<UpdateOp> {
    let base = baseline(ft);
    let old = StoreSnapshot::replay(&base);
    let mut records = base;
    let pushable: Vec<String> = ft
        .aggs
        .iter()
        .flatten()
        .chain(ft.cores.iter())
        .map(|id| ft.topo.device(*id).name.clone())
        .collect();
    for (i, name) in pushable.iter().enumerate() {
        if push_mask & (1 << (i % 64)) == 0 {
            continue;
        }
        records.push(WalRecord::SetDeviceAttr {
            name: name.clone(),
            attr: attrs::FIRMWARE_VERSION.into(),
            value: "fw-2.0.0".into(),
        });
        records.push(WalRecord::SetDeviceAttr {
            name: name.clone(),
            attr: "CONFIG_VERSION".into(),
            value: "g2".into(),
        });
    }
    let tors: Vec<String> = ft
        .tors
        .iter()
        .flatten()
        .map(|id| ft.topo.device(*id).name.clone())
        .collect();
    for (i, name) in tors.iter().enumerate() {
        if db_mask & (1 << (i % 64)) == 0 {
            continue;
        }
        records.push(WalRecord::SetDeviceAttr {
            name: name.clone(),
            attr: "MGMT_GENERATION".into(),
            value: "g2".into(),
        });
    }
    diff(&old, &StoreSnapshot::replay(&records))
}

/// Expands one abstract wave step into the log entries the executor
/// writes for it (see `run_wave`: the drain barrier carries the
/// maintenance-status write, the undrain carries the restore).
fn entries_for(step: StepKind) -> Vec<LogEntry> {
    match step {
        StepKind::Drain => vec![
            LogEntry::ok(OpType::Drain, "apply(f_drain)"),
            LogEntry::ok(OpType::DbChange, "set(DEVICE_STATUS)"),
        ],
        StepKind::DbWrite => vec![LogEntry::ok(OpType::DbChange, "set(attr)")],
        StepKind::Push => vec![LogEntry::ok(OpType::PushCfg, "apply(f_push)")],
        StepKind::Undrain => vec![
            LogEntry::ok(OpType::Undrain, "apply(f_undrain)"),
            LogEntry::ok(OpType::DbChange, "set(DEVICE_STATUS)"),
        ],
    }
}

/// The full execution log of one wave.
fn wave_log(wave: &Wave) -> Vec<LogEntry> {
    wave_steps(wave).into_iter().flat_map(entries_for).collect()
}

proptest! {
    /// Every physical intermediate of every wave — any subset drained
    /// during the barrier, any subset rewritten during the push — holds
    /// the invariants, and the plan covers each op exactly once.
    #[test]
    fn plans_are_sound_under_partial_wave_states(
        push_mask in any::<u64>(),
        db_mask in any::<u64>(),
        seed in any::<u64>(),
        subset_mask in any::<u64>(),
    ) {
        let ft = fabric();
        let classes = classes(&ft);
        let ops = ops_for_masks(&ft, push_mask, db_mask);
        let synth = Synthesizer::new(&ft.topo, &classes).with_seed(seed);
        let plan = synth.synthesize(&ops).expect("feasible plan");
        prop_assert!(synth.verify(&plan).is_empty());

        // Coverage: every input op lands in exactly one wave.
        let mut planned: Vec<&str> = plan
            .waves
            .iter()
            .flat_map(|w| w.ops.iter().map(|o| o.device.as_str()))
            .collect();
        planned.sort_unstable();
        let mut wanted: Vec<&str> = ops.iter().map(|o| o.device.as_str()).collect();
        wanted.sort_unstable();
        prop_assert_eq!(planned, wanted);

        // Partial-state soundness, replayed on the verifier's model.
        use occam_update::{Checker, ModelState};
        let checker = Checker::new(&ft.topo, &classes);
        let mut model = ModelState::default();
        for wave in &plan.waves {
            let ids: Vec<_> = wave
                .ops
                .iter()
                .filter_map(|o| ft.topo.device_by_name(&o.device))
                .collect();
            let chosen: Vec<_> = ids
                .iter()
                .enumerate()
                .filter(|(i, _)| subset_mask & (1 << (i % 64)) != 0)
                .map(|(_, id)| *id)
                .collect();
            if wave.barrier {
                // Mid-drain: a subset is already routed around, nothing
                // is being rewritten yet.
                let mut mid = model.clone();
                mid.drained.extend(chosen.iter().copied());
                prop_assert!(checker.check(&mid).is_empty());
                // Mid-push: the whole wave is drained, a subset is being
                // rewritten.
                let mut mid = model.clone();
                mid.drained.extend(ids.iter().copied());
                mid.in_flux.extend(chosen.iter().copied());
                prop_assert!(checker.check(&mid).is_empty());
            }
            // Post-wave boundary: everything back in service.
            for (op, id) in wave.ops.iter().zip(&ids) {
                model.in_flux.remove(id);
                let parked = matches!(
                    op.target_status().and_then(AttrValue::as_str),
                    Some(attrs::STATUS_DRAINED) | Some(attrs::STATUS_UNDER_MAINTENANCE)
                );
                if parked {
                    model.drained.insert(*id);
                } else {
                    model.drained.remove(id);
                }
            }
            prop_assert!(checker.check(&model).is_empty());
        }
    }

    /// A wave aborted after any step leaves a log the rollback grammar
    /// parses — including with the final entry marked failed, which is
    /// the shape `into_report` hands to the rollback planner.
    #[test]
    fn every_abort_prefix_of_a_wave_log_parses(
        push_mask in any::<u64>(),
        db_mask in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let ft = fabric();
        let classes = classes(&ft);
        let ops = ops_for_masks(&ft, push_mask, db_mask);
        let plan = Synthesizer::new(&ft.topo, &classes)
            .with_seed(seed)
            .synthesize(&ops)
            .expect("feasible plan");
        for wave in &plan.waves {
            let log = wave_log(wave);
            prop_assert!(parse_log(&log).is_ok(), "complete log must parse");
            for cut in 1..=log.len() {
                let mut prefix: Vec<LogEntry> = log[..cut].to_vec();
                prop_assert!(
                    parse_log(&prefix).is_ok(),
                    "abort after entry {cut} of {:?} must parse",
                    wave_steps(wave)
                );
                prefix.last_mut().expect("non-empty").status = OpStatus::Failed;
                prop_assert!(
                    parse_log(&prefix).is_ok(),
                    "failure at entry {cut} of {:?} must parse",
                    wave_steps(wave)
                );
            }
        }
    }

    /// Synthesis is a pure function of `(ops, seed)`; any seed's plan
    /// verifies clean.
    #[test]
    fn plans_are_deterministic_per_seed(
        push_mask in any::<u64>(),
        db_mask in any::<u64>(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let ft = fabric();
        let classes = classes(&ft);
        let ops = ops_for_masks(&ft, push_mask, db_mask);
        let synth_a = Synthesizer::new(&ft.topo, &classes).with_seed(seed_a);
        let once = synth_a.synthesize(&ops).expect("feasible plan");
        let again = synth_a.synthesize(&ops).expect("feasible plan");
        prop_assert_eq!(&once, &again);
        let synth_b = Synthesizer::new(&ft.topo, &classes).with_seed(seed_b);
        let other = synth_b.synthesize(&ops).expect("feasible plan");
        prop_assert!(synth_b.verify(&other).is_empty());
        prop_assert_eq!(other.num_ops(), ops.len());
    }
}
