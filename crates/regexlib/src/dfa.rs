//! Complete DFAs: subset construction, boolean product operations,
//! Hopcroft minimization, and language queries.
//!
//! All DFAs in this module are *complete*: every state has a transition on
//! every alphabet symbol (a dead state absorbs the rest). Completeness makes
//! complement a bit-flip and lets product constructions walk both machines
//! in lockstep without option-handling.

use crate::alphabet::{sym_index, NSYM};
use crate::ast::Ast;
use crate::nfa::Nfa;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts product-automaton walks (`product_raw` and [`Dfa::relate_lang`])
/// performed process-wide. The object tree's cost model is "product walks
/// per insert probe"; tests read this counter to pin that cost down.
static PRODUCT_OPS: AtomicU64 = AtomicU64::new(0);

/// Total product-automaton walks performed by this process so far.
pub fn product_ops() -> u64 {
    PRODUCT_OPS.load(Ordering::Relaxed)
}

/// How the languages of two automata (or patterns) relate as sets.
///
/// Produced by a single synchronized product walk ([`Dfa::relate_lang`])
/// instead of up to four separate subset constructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `L(a) = L(b)`.
    Equal,
    /// `L(a) ⊂ L(b)` strictly.
    ProperSubset,
    /// `L(a) ⊃ L(b)` strictly.
    ProperSuperset,
    /// The languages intersect but neither contains the other.
    Overlap,
    /// `L(a) ∩ L(b) = ∅`.
    Disjoint,
}

impl Relation {
    /// The relation with the roles of `a` and `b` swapped.
    pub fn flip(self) -> Relation {
        match self {
            Relation::ProperSubset => Relation::ProperSuperset,
            Relation::ProperSuperset => Relation::ProperSubset,
            r => r,
        }
    }

    /// `L(a) ⊆ L(b)` under this relation.
    pub fn is_subset(self) -> bool {
        matches!(self, Relation::Equal | Relation::ProperSubset)
    }

    /// `L(a) ⊇ L(b)` under this relation.
    pub fn is_superset(self) -> bool {
        matches!(self, Relation::Equal | Relation::ProperSuperset)
    }

    /// `L(a) ∩ L(b) ≠ ∅` under this relation.
    ///
    /// Note the edge case: `Equal` and the proper containments imply a
    /// nonempty intersection only when the smaller language is nonempty;
    /// `relate_lang` maps pairs involving `∅` to `Equal`/`ProperSubset`/
    /// `ProperSuperset`, so callers holding nonempty regions (the object
    /// tree never stores `∅`) can read this as plain overlap.
    pub fn intersects(self) -> bool {
        !matches!(self, Relation::Disjoint)
    }
}

/// A deterministic finite automaton over the device-ID alphabet.
///
/// States are numbered `0..num_states`; `trans[s * NSYM + a]` is the
/// successor of state `s` on symbol index `a`.
#[derive(Clone, Debug)]
pub struct Dfa {
    trans: Vec<u32>,
    accept: Vec<bool>,
    start: u32,
}

impl Dfa {
    /// Number of states (including the dead state, if distinguishable).
    pub fn num_states(&self) -> usize {
        self.accept.len()
    }

    /// The start state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Whether `state` is accepting.
    pub fn is_accept(&self, state: u32) -> bool {
        self.accept[state as usize]
    }

    /// The successor of `state` on symbol index `sym`.
    pub fn next(&self, state: u32, sym: u8) -> u32 {
        self.trans[state as usize * NSYM + sym as usize]
    }

    /// Builds a DFA from an AST via Thompson construction and subset
    /// construction, then minimizes it.
    pub fn from_ast(ast: &Ast) -> Dfa {
        let nfa = Nfa::from_ast(ast);
        Self::from_nfa(&nfa).minimize()
    }

    /// Subset construction from an ε-NFA. The result is complete but not
    /// necessarily minimal.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        let mut subset_ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut subsets: Vec<Vec<u32>> = Vec::new();
        let mut trans: Vec<u32> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();

        let intern = |set: Vec<u32>,
                      subsets: &mut Vec<Vec<u32>>,
                      trans: &mut Vec<u32>,
                      accept: &mut Vec<bool>,
                      subset_ids: &mut HashMap<Vec<u32>, u32>|
         -> u32 {
            if let Some(&id) = subset_ids.get(&set) {
                return id;
            }
            let id = subsets.len() as u32;
            accept.push(set.contains(&nfa.accept));
            subset_ids.insert(set.clone(), id);
            subsets.push(set);
            trans.resize(trans.len() + NSYM, u32::MAX);
            id
        };

        let start_set = nfa.eps_closure(&[nfa.start]);
        let start = intern(
            start_set,
            &mut subsets,
            &mut trans,
            &mut accept,
            &mut subset_ids,
        );
        let mut work = vec![start];
        while let Some(id) = work.pop() {
            let cur = subsets[id as usize].clone();
            for sym in 0..NSYM as u8 {
                let mut moved: Vec<u32> = Vec::new();
                for &s in &cur {
                    for &(set, t) in &nfa.states[s as usize].trans {
                        if set.contains_idx(sym) {
                            moved.push(t);
                        }
                    }
                }
                let closed = nfa.eps_closure(&moved);
                let existed = subset_ids.contains_key(&closed);
                let tid = intern(
                    closed,
                    &mut subsets,
                    &mut trans,
                    &mut accept,
                    &mut subset_ids,
                );
                if !existed {
                    work.push(tid);
                }
                trans[id as usize * NSYM + sym as usize] = tid;
            }
        }
        Dfa {
            trans,
            accept,
            start,
        }
    }

    /// Tests whether the DFA accepts `input`. Bytes outside the alphabet
    /// reject immediately.
    pub fn matches(&self, input: &str) -> bool {
        let mut s = self.start;
        for b in input.bytes() {
            match sym_index(b) {
                Some(i) => s = self.next(s, i),
                None => return false,
            }
        }
        self.is_accept(s)
    }

    /// Returns true if the language is empty (no accepting state reachable).
    pub fn is_empty(&self) -> bool {
        let mut seen = vec![false; self.num_states()];
        let mut stack = vec![self.start];
        seen[self.start as usize] = true;
        while let Some(s) = stack.pop() {
            if self.is_accept(s) {
                return false;
            }
            for sym in 0..NSYM as u8 {
                let t = self.next(s, sym);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// Complement with respect to the full alphabet language `Σ*`.
    pub fn complement(&self) -> Dfa {
        Dfa {
            trans: self.trans.clone(),
            accept: self.accept.iter().map(|a| !a).collect(),
            start: self.start,
        }
    }

    /// Boolean product construction; `f` combines acceptance of the two
    /// machines (`&&` for intersection, `|| ` for union, `a && !b` for
    /// difference, `!=` for symmetric difference). The result is minimized.
    pub fn product(&self, other: &Dfa, f: impl Fn(bool, bool) -> bool) -> Dfa {
        self.product_raw(other, f).minimize()
    }

    /// The product construction without minimization — used by the decision
    /// predicates (emptiness only needs reachability, not a canonical
    /// machine), which the object tree calls on every insert.
    fn product_raw(&self, other: &Dfa, f: impl Fn(bool, bool) -> bool) -> Dfa {
        PRODUCT_OPS.fetch_add(1, Ordering::Relaxed);
        let mut ids: HashMap<(u32, u32), u32> = HashMap::new();
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut trans: Vec<u32> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();

        let intern = |p: (u32, u32),
                      pairs: &mut Vec<(u32, u32)>,
                      trans: &mut Vec<u32>,
                      accept: &mut Vec<bool>,
                      ids: &mut HashMap<(u32, u32), u32>|
         -> u32 {
            if let Some(&id) = ids.get(&p) {
                return id;
            }
            let id = pairs.len() as u32;
            ids.insert(p, id);
            accept.push(f(self.is_accept(p.0), other.is_accept(p.1)));
            pairs.push(p);
            trans.resize(trans.len() + NSYM, u32::MAX);
            id
        };

        let start = intern(
            (self.start, other.start),
            &mut pairs,
            &mut trans,
            &mut accept,
            &mut ids,
        );
        let mut work = vec![start];
        while let Some(id) = work.pop() {
            let (a, b) = pairs[id as usize];
            for sym in 0..NSYM as u8 {
                let p = (self.next(a, sym), other.next(b, sym));
                let existed = ids.contains_key(&p);
                let tid = intern(p, &mut pairs, &mut trans, &mut accept, &mut ids);
                if !existed {
                    work.push(tid);
                }
                trans[id as usize * NSYM + sym as usize] = tid;
            }
        }
        Dfa {
            trans,
            accept,
            start,
        }
    }

    /// `L(self) ∩ L(other)`.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// `L(self) ∪ L(other)`.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b)
    }

    /// `L(self) ∖ L(other)`.
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && !b)
    }

    /// `L(other) ⊆ L(self)`.
    pub fn contains_lang(&self, other: &Dfa) -> bool {
        other.product_raw(self, |a, b| a && !b).is_empty()
    }

    /// `L(self) ∩ L(other) ≠ ∅`.
    pub fn overlaps(&self, other: &Dfa) -> bool {
        !self.product_raw(other, |a, b| a && b).is_empty()
    }

    /// `L(self) = L(other)`.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.product_raw(other, |a, b| a != b).is_empty()
    }

    /// Classifies `L(self)` against `L(other)` in ONE synchronized product
    /// walk.
    ///
    /// The walk explores reachable state pairs of the product automaton and
    /// tracks three emptiness bits — is `L(self) ∖ L(other)` inhabited, is
    /// `L(other) ∖ L(self)` inhabited, is `L(self) ∩ L(other)` inhabited —
    /// which together determine the [`Relation`]. This replaces the up to
    /// four separate subset constructions (`equivalent`, two `contains`,
    /// `overlaps`) the object tree previously ran per child probe, visiting
    /// each product state at most once and exiting early as soon as all
    /// three bits are set (the answer is then necessarily `Overlap`).
    pub fn relate_lang(&self, other: &Dfa) -> Relation {
        PRODUCT_OPS.fetch_add(1, Ordering::Relaxed);
        let mut ids: HashMap<(u32, u32), ()> = HashMap::new();
        let mut work: Vec<(u32, u32)> = Vec::new();
        let start = (self.start, other.start);
        ids.insert(start, ());
        work.push(start);
        let (mut a_not_b, mut b_not_a, mut inter) = (false, false, false);
        while let Some((a, b)) = work.pop() {
            match (self.is_accept(a), other.is_accept(b)) {
                (true, true) => inter = true,
                (true, false) => a_not_b = true,
                (false, true) => b_not_a = true,
                (false, false) => {}
            }
            if a_not_b && b_not_a && inter {
                return Relation::Overlap;
            }
            for sym in 0..NSYM as u8 {
                let p = (self.next(a, sym), other.next(b, sym));
                if let std::collections::hash_map::Entry::Vacant(e) = ids.entry(p) {
                    e.insert(());
                    work.push(p);
                }
            }
        }
        match (a_not_b, b_not_a, inter) {
            (false, false, _) => Relation::Equal,
            (false, true, _) => Relation::ProperSubset,
            (true, false, _) => Relation::ProperSuperset,
            (true, true, true) => Relation::Overlap,
            (true, true, false) => Relation::Disjoint,
        }
    }

    /// A canonical 128-bit fingerprint of the language.
    ///
    /// Minimizes, renumbers states by BFS order from the start state
    /// (symbols in alphabet order), and hashes the resulting structure with
    /// FNV-1a. Minimal complete DFAs are unique up to state numbering and
    /// BFS order is determined by the structure, so two automata get the
    /// same fingerprint iff they accept the same language (modulo the
    /// 2⁻¹²⁸ hash-collision chance).
    pub fn canonical_hash(&self) -> u128 {
        let min = self.minimize();
        let n = min.num_states();
        // BFS renumbering from the start state.
        let mut order = vec![u32::MAX; n];
        let mut bfs: Vec<u32> = Vec::with_capacity(n);
        order[min.start as usize] = 0;
        bfs.push(min.start);
        let mut head = 0;
        while head < bfs.len() {
            let s = bfs[head];
            head += 1;
            for sym in 0..NSYM as u8 {
                let t = min.next(s, sym);
                if order[t as usize] == u32::MAX {
                    order[t as usize] = bfs.len() as u32;
                    bfs.push(t);
                }
            }
        }
        // FNV-1a over (num_states, then per state in BFS order: accept bit
        // and renumbered successors).
        const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
        const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u128::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(bfs.len() as u64);
        for &s in &bfs {
            mix(u64::from(min.is_accept(s)));
            for sym in 0..NSYM as u8 {
                mix(u64::from(order[min.next(s, sym) as usize]));
            }
        }
        h
    }

    /// Hopcroft's partition-refinement minimization.
    ///
    /// Unreachable states are first discarded; the result is the canonical
    /// minimal complete DFA for the language (up to state numbering).
    pub fn minimize(&self) -> Dfa {
        // Discard unreachable states.
        let n = self.num_states();
        let mut reach = vec![false; n];
        let mut stack = vec![self.start];
        reach[self.start as usize] = true;
        while let Some(s) = stack.pop() {
            for sym in 0..NSYM as u8 {
                let t = self.next(s, sym);
                if !reach[t as usize] {
                    reach[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        let mut remap = vec![u32::MAX; n];
        let mut states: Vec<u32> = Vec::new();
        for (s, &r) in reach.iter().enumerate() {
            if r {
                remap[s] = states.len() as u32;
                states.push(s as u32);
            }
        }
        let m = states.len();

        // Partition refinement over the reachable subautomaton.
        // `part[s]` is the block id of (renumbered) state s.
        let mut part: Vec<u32> = states
            .iter()
            .map(|&s| u32::from(self.accept[s as usize]))
            .collect();
        let mut num_blocks = if part.contains(&1) && part.contains(&0) {
            2
        } else {
            1
        };
        if num_blocks == 1 {
            // Normalize block ids to 0.
            for b in part.iter_mut() {
                *b = 0;
            }
        }
        // Iteratively refine: two states stay together iff for every symbol
        // their successors are in the same block. (Moore's algorithm; with
        // the small alphabets and automata here it is effectively as fast as
        // Hopcroft's worklist variant and much simpler to verify.)
        loop {
            let mut sig_ids: HashMap<(u32, [u32; NSYM]), u32> = HashMap::new();
            let mut new_part = vec![0u32; m];
            let mut next_block = 0u32;
            for (i, &s) in states.iter().enumerate() {
                let mut sig = [0u32; NSYM];
                for (sym, slot) in sig.iter_mut().enumerate() {
                    let t = self.trans[s as usize * NSYM + sym];
                    *slot = part[remap[t as usize] as usize];
                }
                let key = (part[i], sig);
                let id = *sig_ids.entry(key).or_insert_with(|| {
                    let id = next_block;
                    next_block += 1;
                    id
                });
                new_part[i] = id;
            }
            if next_block as usize == num_blocks as usize {
                part = new_part;
                break;
            }
            num_blocks = next_block;
            part = new_part;
        }

        let nb = num_blocks as usize;
        let mut trans = vec![u32::MAX; nb * NSYM];
        let mut accept = vec![false; nb];
        for (i, &s) in states.iter().enumerate() {
            let b = part[i] as usize;
            accept[b] = self.accept[s as usize];
            for sym in 0..NSYM {
                let t = self.trans[s as usize * NSYM + sym];
                trans[b * NSYM + sym] = part[remap[t as usize] as usize];
            }
        }
        Dfa {
            trans,
            accept,
            start: part[remap[self.start as usize] as usize],
        }
    }

    /// Enumerates up to `limit` accepted strings in shortest-first order.
    ///
    /// Useful for tests and for explaining a region to an operator ("devices
    /// matching this scope look like ...").
    pub fn sample(&self, limit: usize) -> Vec<String> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        // BFS over (state, prefix); prune dead states (no accept reachable).
        let live = self.live_states();
        if !live[self.start as usize] {
            return out;
        }
        let mut queue: std::collections::VecDeque<(u32, String)> =
            std::collections::VecDeque::new();
        queue.push_back((self.start, String::new()));
        // Cap explored prefixes to avoid pathological blow-ups.
        let mut explored = 0usize;
        while let Some((s, prefix)) = queue.pop_front() {
            explored += 1;
            if explored > 100_000 {
                break;
            }
            if self.is_accept(s) {
                out.push(prefix.clone());
                if out.len() >= limit {
                    break;
                }
            }
            for sym in 0..NSYM as u8 {
                let t = self.next(s, sym);
                if live[t as usize] {
                    let mut p = prefix.clone();
                    p.push(crate::alphabet::sym_byte(sym) as char);
                    queue.push_back((t, p));
                }
            }
        }
        out
    }

    /// Marks states from which an accepting state is reachable.
    fn live_states(&self) -> Vec<bool> {
        let n = self.num_states();
        // Reverse reachability from accepting states.
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for s in 0..n as u32 {
            for sym in 0..NSYM as u8 {
                rev[self.next(s, sym) as usize].push(s);
            }
        }
        let mut live = vec![false; n];
        let mut stack: Vec<u32> = (0..n as u32).filter(|&s| self.is_accept(s)).collect();
        for &s in &stack {
            live[s as usize] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &rev[s as usize] {
                if !live[p as usize] {
                    live[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        live
    }

    /// The longest string every member of the language starts with.
    ///
    /// Computed by walking the unique live transition chain from the start
    /// state. Scoped database queries use this to turn full-table scans
    /// into range scans (`dc01\.pod03\..*` → prefix `dc01.pod03.`).
    pub fn literal_prefix(&self) -> String {
        let live = self.live_states();
        let mut prefix = String::new();
        let mut state = self.start;
        if !live[self.start as usize] {
            return prefix;
        }
        loop {
            // Accepting state: the empty continuation is in the language,
            // so the prefix cannot grow further.
            if self.is_accept(state) {
                return prefix;
            }
            let mut next: Option<(u8, u32)> = None;
            for sym in 0..NSYM as u8 {
                let t = self.next(state, sym);
                if live[t as usize] {
                    if next.is_some() {
                        return prefix; // branching: prefix ends here
                    }
                    next = Some((sym, t));
                }
            }
            match next {
                Some((sym, t)) => {
                    prefix.push(crate::alphabet::sym_byte(sym) as char);
                    state = t;
                }
                None => return prefix, // empty language tail
            }
            if prefix.len() > 4096 {
                return prefix; // defensive bound for degenerate machines
            }
        }
    }

    /// Returns true if the language is finite, and if so its cardinality
    /// (up to `cap`; returns `None` when infinite or above the cap).
    pub fn count_strings(&self, cap: u64) -> Option<u64> {
        // The language is infinite iff a cycle exists among live, reachable
        // states. Detect via DFS colors on the live sub-graph.
        let live = self.live_states();
        let n = self.num_states();
        let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
        let mut has_cycle = false;
        // Iterative DFS from start.
        let mut stack: Vec<(u32, u8)> = Vec::new();
        if live[self.start as usize] {
            stack.push((self.start, 0));
        }
        while let Some((s, sym)) = stack.pop() {
            if sym == 0 {
                if color[s as usize] == 1 {
                    continue;
                }
                color[s as usize] = 1;
            }
            if (sym as usize) < NSYM {
                stack.push((s, sym + 1));
                let t = self.next(s, sym);
                if live[t as usize] {
                    match color[t as usize] {
                        0 => stack.push((t, 0)),
                        1 => has_cycle = true,
                        _ => {}
                    }
                }
            } else {
                color[s as usize] = 2;
            }
        }
        if has_cycle {
            return None;
        }
        // Count paths by memoized DFS (the live sub-graph is a DAG here).
        fn count(dfa: &Dfa, live: &[bool], memo: &mut [Option<u64>], s: u32, cap: u64) -> u64 {
            if let Some(c) = memo[s as usize] {
                return c;
            }
            let mut total: u64 = u64::from(dfa.is_accept(s));
            for sym in 0..NSYM as u8 {
                let t = dfa.next(s, sym);
                if live[t as usize] {
                    total = total.saturating_add(count(dfa, live, memo, t, cap));
                    if total > cap {
                        break;
                    }
                }
            }
            memo[s as usize] = Some(total);
            total
        }
        if !live[self.start as usize] {
            return Some(0);
        }
        let mut memo = vec![None; n];
        let c = count(self, &live, &mut memo, self.start, cap);
        (c <= cap).then_some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn dfa(p: &str) -> Dfa {
        Dfa::from_ast(&parse(p).unwrap())
    }

    #[test]
    fn membership_matches_pattern() {
        let d = dfa(r"dc1\.pod[1-2]\..*");
        assert!(d.matches("dc1.pod1.tor3"));
        assert!(d.matches("dc1.pod2."));
        assert!(!d.matches("dc1.pod3.x"));
        assert!(!d.matches("dc1.pod1"));
        assert!(!d.matches("DC1.pod1.x")); // outside alphabet
    }

    #[test]
    fn emptiness() {
        assert!(dfa("[]").is_empty());
        assert!(!dfa("").is_empty());
        assert!(!dfa("a*").is_empty());
        assert!(dfa("[]a").is_empty());
    }

    #[test]
    fn intersection_and_difference() {
        let a = dfa("a*b");
        let b = dfa("ab|b");
        let i = a.intersect(&b);
        assert!(i.matches("ab"));
        assert!(i.matches("b"));
        assert!(!i.matches("aab"));
        let d = a.difference(&b);
        assert!(d.matches("aab"));
        assert!(!d.matches("ab"));
        assert!(!d.matches("b"));
    }

    #[test]
    fn containment_is_language_level() {
        let big = dfa(r"dc1\..*");
        let small = dfa(r"dc1\.pod3\..*");
        assert!(big.contains_lang(&small));
        assert!(!small.contains_lang(&big));
        // Reflexive.
        assert!(big.contains_lang(&big));
    }

    #[test]
    fn overlap_detection() {
        let a = dfa(r"dc1\.pod[1-3]\..*");
        let b = dfa(r"dc1\.pod[3-5]\..*");
        let c = dfa(r"dc2\..*");
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn equivalence_after_different_constructions() {
        let a = dfa("(a|b)*");
        let b = dfa("(a*b*)*");
        assert!(a.equivalent(&b));
        let c = dfa("(ab)*");
        assert!(!a.equivalent(&c));
    }

    #[test]
    fn complement_laws() {
        let a = dfa("abc.*");
        let c = a.complement();
        assert!(!c.matches("abcx"));
        assert!(c.matches("xyz"));
        assert!(c.matches(""));
        assert!(a.union(&c).equivalent(&dfa(".*")));
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn minimize_is_canonical_size() {
        // (a|b)*: minimal complete DFA has exactly 1 state... over the full
        // alphabet it needs 2 (accepting loop on {a,b}, dead on the rest).
        let d = dfa("(a|b)*");
        assert_eq!(d.num_states(), 2);
        // Σ* has exactly one state.
        assert_eq!(dfa(".*").num_states(), 1);
        // ∅ has exactly one state.
        assert_eq!(dfa("[]").num_states(), 1);
    }

    #[test]
    fn sample_shortest_first() {
        let d = dfa("a|ab|abc");
        let s = d.sample(10);
        assert_eq!(s, vec!["a", "ab", "abc"]);
        let empty = dfa("[]").sample(5);
        assert!(empty.is_empty());
    }

    #[test]
    fn literal_prefix_extraction() {
        assert_eq!(dfa(r"dc01\.pod03\..*").literal_prefix(), "dc01.pod03.");
        assert_eq!(dfa(r"dc01\.(pod1|pod2)\..*").literal_prefix(), "dc01.pod");
        assert_eq!(dfa(".*").literal_prefix(), "");
        assert_eq!(dfa("abc").literal_prefix(), "abc");
        assert_eq!(dfa("[]").literal_prefix(), "");
        assert_eq!(dfa("a|ab").literal_prefix(), "a");
        assert_eq!(dfa("x.*y").literal_prefix(), "x");
    }

    #[test]
    fn count_strings_finite_and_infinite() {
        assert_eq!(dfa("a|ab|abc").count_strings(100), Some(3));
        assert_eq!(dfa("[ab]{2}").count_strings(100), Some(4));
        assert_eq!(dfa("a*").count_strings(100), None);
        assert_eq!(dfa("[]").count_strings(100), Some(0));
    }

    #[test]
    fn relate_matches_pairwise_predicates() {
        let cases = [
            ("a*b", "a*b", Relation::Equal),
            (r"dc1\.pod3\..*", r"dc1\..*", Relation::ProperSubset),
            (r"dc1\..*", r"dc1\.pod3\..*", Relation::ProperSuperset),
            (
                r"dc1\.pod[1-3]\..*",
                r"dc1\.pod[3-5]\..*",
                Relation::Overlap,
            ),
            (r"dc1\..*", r"dc2\..*", Relation::Disjoint),
            ("(a|b)*", "(a*b*)*", Relation::Equal),
        ];
        for (a, b, want) in cases {
            let (da, db) = (dfa(a), dfa(b));
            assert_eq!(da.relate_lang(&db), want, "{a} vs {b}");
            assert_eq!(db.relate_lang(&da), want.flip(), "{b} vs {a}");
        }
    }

    #[test]
    fn relate_empty_language_edge_cases() {
        let empty = dfa("[]");
        let some = dfa("a*b");
        assert_eq!(empty.relate_lang(&empty), Relation::Equal);
        assert_eq!(empty.relate_lang(&some), Relation::ProperSubset);
        assert_eq!(some.relate_lang(&empty), Relation::ProperSuperset);
    }

    #[test]
    fn canonical_hash_is_language_level() {
        // Same language, different constructions → same fingerprint.
        assert_eq!(
            dfa("(a|b)*").canonical_hash(),
            dfa("(a*b*)*").canonical_hash()
        );
        assert_eq!(
            dfa(r"dc1\.pod[1-2]\..*").canonical_hash(),
            dfa(r"dc1\.(pod1|pod2)\..*").canonical_hash()
        );
        // Different languages → different fingerprints.
        assert_ne!(
            dfa("(a|b)*").canonical_hash(),
            dfa("(ab)*").canonical_hash()
        );
        assert_ne!(dfa("[]").canonical_hash(), dfa(".*").canonical_hash());
    }

    #[test]
    fn pod_split_scenario() {
        // Mirrors Fig. 3d of the paper: dc1.pod3.* split against dc1.pod[0-4].*.
        let new_obj = dfa(r"dc1\.pod[0-4]\..*");
        let existing = dfa(r"dc1\.pod3\..*");
        let inter = new_obj.intersect(&existing);
        assert!(inter.equivalent(&existing));
        let rest = new_obj.difference(&existing);
        assert!(rest.matches("dc1.pod0.t"));
        assert!(!rest.matches("dc1.pod3.t"));
        assert!(!rest.overlaps(&existing));
        assert!(new_obj.equivalent(&rest.union(&inter)));
    }
}
