//! DFA → regex conversion by GNFA state elimination.
//!
//! The object tree's `Split` operation produces derived regions
//! (intersections and differences of scopes) that must themselves be stored
//! and displayed as *valid regexes* — the property the paper leans on from
//! Câmpeanu & Santean \[10\]. State elimination over AST-labelled edges gives
//! us exactly that, and the smart constructors in [`crate::ast`] keep the
//! output from exploding on the small automata that device scopes produce.

use crate::alphabet::{SymSet, NSYM};
use crate::ast::Ast;
use crate::dfa::Dfa;
use std::collections::HashMap;

/// Converts a DFA to an equivalent regex AST.
///
/// The input is minimized first so the elimination order works on the
/// smallest machine. The output always re-parses to an equivalent language
/// (covered by property tests).
pub fn dfa_to_ast(dfa: &Dfa) -> Ast {
    let dfa = dfa.minimize();
    let n = dfa.num_states();

    // GNFA: states 0..n are the DFA states, n is the super start, n+1 the
    // super accept. Edge map (i, j) -> Ast.
    let start = n;
    let accept = n + 1;
    let mut edges: HashMap<(usize, usize), Ast> = HashMap::new();
    let add_edge = |edges: &mut HashMap<(usize, usize), Ast>, i: usize, j: usize, a: Ast| {
        if a.is_empty_lang() {
            return;
        }
        match edges.remove(&(i, j)) {
            Some(prev) => {
                edges.insert((i, j), Ast::alt(vec![prev, a]));
            }
            None => {
                edges.insert((i, j), a);
            }
        }
    };

    // Collapse parallel symbol edges into classes.
    for s in 0..n as u32 {
        let mut by_target: HashMap<u32, SymSet> = HashMap::new();
        for sym in 0..NSYM as u8 {
            let t = dfa.next(s, sym);
            by_target
                .entry(t)
                .or_insert(SymSet::EMPTY)
                .insert(crate::alphabet::sym_byte(sym));
        }
        for (t, set) in by_target {
            add_edge(&mut edges, s as usize, t as usize, Ast::Class(set));
        }
        if dfa.is_accept(s) {
            add_edge(&mut edges, s as usize, accept, Ast::Epsilon);
        }
    }
    add_edge(&mut edges, start, dfa.start() as usize, Ast::Epsilon);

    // Eliminate DFA states one at a time. Order heuristic: fewest incident
    // edges first, which empirically keeps intermediate ASTs small.
    let mut remaining: Vec<usize> = (0..n).collect();
    while !remaining.is_empty() {
        let (pos, &victim) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| edges.keys().filter(|&&(i, j)| (i == v) ^ (j == v)).count())
            .expect("remaining is non-empty");
        remaining.swap_remove(pos);

        let self_loop = edges.remove(&(victim, victim));
        let loop_star = match self_loop {
            Some(l) => Ast::star(l),
            None => Ast::Epsilon,
        };
        let ins: Vec<(usize, Ast)> = edges
            .iter()
            .filter(|(&(_, j), _)| j == victim)
            .map(|(&(i, _), a)| (i, a.clone()))
            .collect();
        let outs: Vec<(usize, Ast)> = edges
            .iter()
            .filter(|(&(i, _), _)| i == victim)
            .map(|(&(_, j), a)| (j, a.clone()))
            .collect();
        edges.retain(|&(i, j), _| i != victim && j != victim);
        for (i, ia) in &ins {
            for (j, ja) in &outs {
                let through = Ast::concat(vec![ia.clone(), loop_star.clone(), ja.clone()]);
                add_edge(&mut edges, *i, *j, through);
            }
        }
    }

    edges.remove(&(start, accept)).unwrap_or(Ast::Empty)
}

/// Converts a DFA to an equivalent regex string.
pub fn dfa_to_regex(dfa: &Dfa) -> String {
    dfa_to_ast(dfa).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(pattern: &str) {
        let d = Dfa::from_ast(&parse(pattern).unwrap());
        let back = dfa_to_regex(&d);
        let d2 = Dfa::from_ast(
            &parse(&back).unwrap_or_else(|e| panic!("re-parse of {back:?} failed: {e}")),
        );
        assert!(
            d.equivalent(&d2),
            "round trip changed language: {pattern:?} -> {back:?}"
        );
    }

    #[test]
    fn round_trips_simple() {
        for p in ["", "a", "abc", "a|b", "a*", "(ab|c)*d", "[]"] {
            round_trip(p);
        }
    }

    #[test]
    fn round_trips_scopes() {
        for p in [
            r"dc1\.pod3\..*",
            r"dc1\.pod[0-4]\..*",
            r"dc1\.(pod1|pod2)\.tor[0-9]",
            r"dc[0-9]{2}\..*",
        ] {
            round_trip(p);
        }
    }

    #[test]
    fn difference_produces_valid_regex() {
        let a = Dfa::from_ast(&parse(r"dc1\.pod[0-4]\..*").unwrap());
        let b = Dfa::from_ast(&parse(r"dc1\.pod3\..*").unwrap());
        let diff = a.difference(&b);
        let s = dfa_to_regex(&diff);
        let re = Dfa::from_ast(&parse(&s).unwrap());
        assert!(re.equivalent(&diff));
        assert!(re.matches("dc1.pod0.t"));
        assert!(!re.matches("dc1.pod3.t"));
    }

    #[test]
    fn empty_language_prints_unmatchable() {
        let d = Dfa::from_ast(&parse("[]").unwrap());
        let s = dfa_to_regex(&d);
        let re = Dfa::from_ast(&parse(&s).unwrap());
        assert!(re.is_empty());
    }

    #[test]
    fn universe_round_trip_is_compact() {
        let d = Dfa::from_ast(&parse(".*").unwrap());
        let s = dfa_to_regex(&d);
        // Must denote Σ*; ideally stays literally `.*`.
        let re = Dfa::from_ast(&parse(&s).unwrap());
        assert!(re.equivalent(&d));
        assert!(s.len() <= 8, "universe regex blew up: {s:?}");
    }
}
