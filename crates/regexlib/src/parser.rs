//! A recursive-descent parser for the supported regex dialect.
//!
//! Grammar (POSIX-flavoured, restricted to the device-ID alphabet):
//!
//! ```text
//! alt    := concat ('|' concat)*
//! concat := repeat*
//! repeat := atom ('*' | '+' | '?' | '{' m (',' n?)? '}')*
//! atom   := literal | '.' | '\' c | '[' ('^')? class-items ']' | '(' alt? ')'
//! ```
//!
//! `[]` (an empty class) is accepted and denotes the empty language; this is
//! also what [`crate::ast::Ast::Empty`] prints as, making display/parse a
//! round trip.

use crate::alphabet::{sym_index, SymSet};
use crate::ast::Ast;

/// An error produced while parsing a regex.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Byte offset in the input where the error occurred.
    pub pos: usize,
    /// Human-readable description of the problem.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regex parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn parse_alt(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(Ast::alt(branches))
    }

    fn parse_concat(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(Ast::concat(parts))
    }

    fn parse_repeat(&mut self) -> Result<Ast, ParseError> {
        let mut atom = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    atom = Ast::star(atom);
                }
                Some(b'+') => {
                    self.bump();
                    atom = Ast::plus(atom);
                }
                Some(b'?') => {
                    self.bump();
                    atom = Ast::optional(atom);
                }
                Some(b'{') => {
                    self.bump();
                    atom = self.parse_bound(atom)?;
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn parse_number(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        let mut n: u32 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            self.bump();
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(u32::from(b - b'0')))
                .ok_or_else(|| self.err("repetition count overflow"))?;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        if n > 1000 {
            return Err(self.err("repetition count exceeds 1000"));
        }
        Ok(n)
    }

    fn parse_bound(&mut self, atom: Ast) -> Result<Ast, ParseError> {
        let min = self.parse_number()?;
        let max = match self.peek() {
            Some(b',') => {
                self.bump();
                if self.peek() == Some(b'}') {
                    None
                } else {
                    let m = self.parse_number()?;
                    if m < min {
                        return Err(self.err("max repetition below min"));
                    }
                    Some(m)
                }
            }
            _ => Some(min),
        };
        if self.bump() != Some(b'}') {
            return Err(self.err("expected `}`"));
        }
        Ok(Ast::repeat(atom, min, max))
    }

    fn parse_atom(&mut self) -> Result<Ast, ParseError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some(b'(') => {
                if self.peek() == Some(b')') {
                    self.bump();
                    return Ok(Ast::Epsilon);
                }
                let inner = self.parse_alt()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("unbalanced `(`"));
                }
                Ok(inner)
            }
            Some(b'[') => self.parse_class(),
            Some(b'.') => Ok(Ast::any()),
            Some(b'\\') => match self.bump() {
                Some(c) => match SymSet::singleton(c) {
                    Some(s) => Ok(Ast::Class(s)),
                    None => Err(self.err(format!("escaped byte `{}` outside alphabet", c as char))),
                },
                None => Err(self.err("dangling escape")),
            },
            Some(b @ (b'*' | b'+' | b'?' | b'{' | b'}' | b')' | b']' | b'|')) => {
                Err(self.err(format!("unexpected metacharacter `{}`", b as char)))
            }
            Some(b) => match SymSet::singleton(b) {
                Some(s) => Ok(Ast::Class(s)),
                None => Err(self.err(format!("byte `{}` outside alphabet", b as char))),
            },
        }
    }

    fn class_byte(&mut self) -> Result<u8, ParseError> {
        match self.bump() {
            Some(b'\\') => self
                .bump()
                .ok_or_else(|| self.err("dangling escape in class")),
            Some(b) => Ok(b),
            None => Err(self.err("unterminated character class")),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, ParseError> {
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut set = SymSet::EMPTY;
        while self.peek() != Some(b']') {
            if self.peek().is_none() {
                return Err(self.err("unterminated character class"));
            }
            let lo = self.class_byte()?;
            // A `-` is a range operator only between two symbols.
            if self.peek() == Some(b'-')
                && self.input.get(self.pos + 1).copied() != Some(b']')
                && self.input.get(self.pos + 1).is_some()
            {
                self.bump(); // `-`
                let hi = self.class_byte()?;
                if hi < lo {
                    return Err(self.err("reversed character range"));
                }
                for b in lo..=hi {
                    if sym_index(b).is_none() {
                        return Err(self.err(format!(
                            "range [{}-{}] leaves the alphabet at `{}`",
                            lo as char, hi as char, b as char
                        )));
                    }
                    set.insert(b);
                }
            } else {
                if !set.insert(lo) {
                    return Err(self.err(format!("byte `{}` outside alphabet", lo as char)));
                }
            }
        }
        self.bump(); // `]`
        let set = if negated { set.complement() } else { set };
        if set.is_empty() {
            // `[]` (or a fully-negated class) denotes the empty language.
            Ok(Ast::Empty)
        } else {
            Ok(Ast::Class(set))
        }
    }
}

/// Parses a regex into an [`Ast`].
///
/// # Examples
///
/// ```
/// use occam_regex::parse;
/// let ast = parse(r"dc01\.pod0[1-3]\..*").unwrap();
/// assert!(!ast.nullable());
/// ```
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        input: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.parse_alt()?;
    if p.pos != p.input.len() {
        return Err(p.err("trailing input after pattern"));
    }
    Ok(ast)
}

/// Converts a glob-style scope (the notation used in the Occam paper, e.g.
/// `dc1.pod3.*`) into an equivalent regex string.
///
/// `.` is treated as a literal separator, `*` as "any suffix" (`.*`), and
/// `?` as any single symbol. Character classes (`[0-4]`) pass through
/// unchanged, so scopes like `dc1.pod[0-4].*` keep their range meaning. All
/// other characters are literals.
///
/// # Examples
///
/// ```
/// use occam_regex::glob_to_regex;
/// assert_eq!(glob_to_regex("dc1.pod3.*"), r"dc1\.pod3\..*");
/// ```
pub fn glob_to_regex(glob: &str) -> String {
    let mut out = String::with_capacity(glob.len() + 8);
    let mut in_class = false;
    for c in glob.chars() {
        match c {
            '[' => {
                in_class = true;
                out.push(c);
            }
            ']' => {
                in_class = false;
                out.push(c);
            }
            '.' if !in_class => out.push_str("\\."),
            '*' if !in_class => out.push_str(".*"),
            '?' if !in_class => out.push('.'),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literals_and_escapes() {
        assert_eq!(parse("abc").unwrap(), Ast::literal_str("abc"));
        assert_eq!(parse(r"a\.b").unwrap(), Ast::literal_str("a.b"));
        assert!(parse(r"a\,b").is_err());
    }

    #[test]
    fn parses_alternation_and_grouping() {
        let ast = parse("ab|cd").unwrap();
        assert!(matches!(&ast, Ast::Alt(ps) if ps.len() == 2));
        let grouped = parse("a(b|c)d").unwrap();
        assert!(matches!(&grouped, Ast::Concat(ps) if ps.len() == 3));
    }

    #[test]
    fn parses_repetitions() {
        assert_eq!(parse("a*").unwrap(), Ast::star(Ast::literal(b'a')));
        assert_eq!(parse("a+").unwrap(), Ast::plus(Ast::literal(b'a')));
        assert_eq!(parse("a?").unwrap(), Ast::optional(Ast::literal(b'a')));
        assert_eq!(
            parse("a{2,3}").unwrap(),
            Ast::repeat(Ast::literal(b'a'), 2, Some(3))
        );
        assert_eq!(
            parse("a{2}").unwrap(),
            Ast::repeat(Ast::literal(b'a'), 2, Some(2))
        );
        assert_eq!(
            parse("a{2,}").unwrap(),
            Ast::repeat(Ast::literal(b'a'), 2, None)
        );
    }

    #[test]
    fn parses_classes() {
        let ast = parse("[abc]").unwrap();
        assert!(matches!(ast, Ast::Class(s) if s.len() == 3));
        let ast = parse("[a-c0-2]").unwrap();
        assert!(matches!(ast, Ast::Class(s) if s.len() == 6));
        let ast = parse("[^a]").unwrap();
        assert!(matches!(ast, Ast::Class(s) if s.len() as usize == crate::alphabet::NSYM - 1));
        assert_eq!(parse("[]").unwrap(), Ast::Empty);
    }

    #[test]
    fn rejects_malformed_patterns() {
        for bad in [
            "(", "a)", "[a", "a{", "a{3,2}", "*a", "a{1001}", "a|*", "[z-a]",
        ] {
            assert!(parse(bad).is_err(), "expected parse failure for {bad:?}");
        }
    }

    #[test]
    fn empty_pattern_is_epsilon() {
        assert_eq!(parse("").unwrap(), Ast::Epsilon);
        assert_eq!(parse("()").unwrap(), Ast::Epsilon);
    }

    #[test]
    fn glob_conversion() {
        assert_eq!(glob_to_regex("dc1.*"), r"dc1\..*");
        assert_eq!(glob_to_regex("dc1.pod?.tor1"), r"dc1\.pod.\.tor1");
        let ast = parse(&glob_to_regex("dc1.pod3.*")).unwrap();
        assert!(!ast.is_empty_lang());
    }

    #[test]
    fn display_parse_round_trip_on_samples() {
        for src in [
            "abc",
            "a|b|cd",
            "(ab)*",
            "a+b?c{2,4}",
            "[a-z0-9]+",
            r"dc01\.pod0[1-3]\..*",
            "[^abc]x*",
        ] {
            let ast = parse(src).unwrap();
            let printed = ast.to_string();
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("re-parse of {printed:?} (from {src:?}) failed: {e}"));
            // Display/parse must be stable after one round trip.
            assert_eq!(
                reparsed.to_string(),
                printed,
                "unstable display for {src:?}"
            );
        }
    }
}
