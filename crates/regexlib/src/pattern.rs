//! The high-level [`Pattern`] type: a regex scope paired with its compiled
//! DFA, supporting the language algebra the object tree needs.

use crate::ast::Ast;
use crate::dfa::{Dfa, Relation};
use crate::parser::{glob_to_regex, parse, ParseError};
use crate::toregex::dfa_to_regex;
use std::sync::{Arc, OnceLock};

/// A compiled network-region scope.
///
/// A `Pattern` is a *symbolic* representation of a set of device names: it
/// covers devices that exist now and devices that may be created later by an
/// ongoing task (paper §3.1). Equality, containment, and overlap are
/// language-level operations on the compiled DFA, never enumerations.
///
/// # Examples
///
/// ```
/// use occam_regex::Pattern;
/// let dc = Pattern::from_glob("dc1.*").unwrap();
/// let pod = Pattern::from_glob("dc1.pod3.*").unwrap();
/// assert!(dc.contains(&pod));
/// assert!(pod.matches("dc1.pod3.tor2"));
/// ```
#[derive(Clone)]
pub struct Pattern {
    src: String,
    inner: Arc<Inner>,
}

/// Shared compiled state: the DFA plus its lazily computed canonical
/// fingerprint. Clones of a `Pattern` (and everything handed out by the
/// [`crate::PatternCache`]) share one `Inner`, so the fingerprint is
/// computed at most once per distinct compilation.
struct Inner {
    dfa: Dfa,
    fp: OnceLock<u128>,
}

impl Inner {
    fn new(dfa: Dfa) -> Arc<Inner> {
        Arc::new(Inner {
            dfa,
            fp: OnceLock::new(),
        })
    }
}

impl Pattern {
    /// Compiles a regex into a pattern.
    pub fn new(regex: &str) -> Result<Pattern, ParseError> {
        let ast = parse(regex)?;
        Ok(Pattern {
            src: regex.to_string(),
            inner: Inner::new(Dfa::from_ast(&ast)),
        })
    }

    /// Compiles a glob-style scope (`dc1.pod3.*`) into a pattern.
    pub fn from_glob(glob: &str) -> Result<Pattern, ParseError> {
        Pattern::new(&glob_to_regex(glob))
    }

    /// Builds a pattern from an already-compiled DFA, deriving its regex
    /// source by state elimination.
    pub fn from_dfa(dfa: Dfa) -> Pattern {
        let src = dfa_to_regex(&dfa);
        Pattern {
            src,
            inner: Inner::new(dfa),
        }
    }

    /// Builds a pattern matching exactly the given device names.
    ///
    /// This is the `to_regex(dev_names)` helper from the paper's dynamic
    /// object creation example.
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Result<Pattern, ParseError> {
        if names.is_empty() {
            return Pattern::new("[]");
        }
        let ast = Ast::alt(names.iter().map(|n| Ast::literal_str(n.as_ref())).collect());
        let dfa = Dfa::from_ast(&ast);
        // Keep a readable alternation as the source rather than the
        // eliminated form.
        let mut src = String::new();
        for (i, n) in names.iter().enumerate() {
            if i > 0 {
                src.push('|');
            }
            for c in n.as_ref().chars() {
                if c == '.' || c == '-' {
                    src.push('\\');
                }
                src.push(c);
            }
        }
        Ok(Pattern {
            src,
            inner: Inner::new(dfa),
        })
    }

    /// The universe pattern `.*` (the virtual root of the object tree).
    ///
    /// Compiled once per process; clones share the compiled DFA and its
    /// fingerprint.
    pub fn universe() -> Pattern {
        static UNIVERSE: OnceLock<Pattern> = OnceLock::new();
        UNIVERSE
            .get_or_init(|| Pattern::new(".*").expect("`.*` is a valid pattern"))
            .clone()
    }

    /// Whether this region is all of `Σ*`.
    ///
    /// Exact and product-free: the minimal complete DFA of the universe is
    /// the unique single accepting state, so it suffices to check that the
    /// complement has no reachable accepting state.
    pub fn is_universe(&self) -> bool {
        self.inner.dfa.complement().is_empty()
    }

    /// The regex source of this pattern.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The compiled DFA.
    pub fn dfa(&self) -> &Dfa {
        &self.inner.dfa
    }

    /// A stable 128-bit fingerprint of the *language* (not the source
    /// string): equivalent patterns fingerprint identically, regardless of
    /// how they were written or derived. Computed lazily from the canonical
    /// minimal DFA and memoized in the pattern's shared inner state, so
    /// clones and cache hits pay nothing.
    pub fn fingerprint(&self) -> u128 {
        *self
            .inner
            .fp
            .get_or_init(|| self.inner.dfa.canonical_hash())
    }

    /// Classifies this region against `other` in one synchronized product
    /// walk — see [`Dfa::relate_lang`]. Use this instead of chaining
    /// [`equivalent`](Self::equivalent) / [`contains`](Self::contains) /
    /// [`overlaps`](Self::overlaps) when more than one of them is needed.
    pub fn relate(&self, other: &Pattern) -> Relation {
        self.inner.dfa.relate_lang(&other.inner.dfa)
    }

    /// Tests whether a device name is in the region.
    pub fn matches(&self, name: &str) -> bool {
        self.inner.dfa.matches(name)
    }

    /// Returns true if the region denotes no device names.
    pub fn is_empty(&self) -> bool {
        self.inner.dfa.is_empty()
    }

    /// `L(other) ⊆ L(self)`.
    pub fn contains(&self, other: &Pattern) -> bool {
        self.inner.dfa.contains_lang(&other.inner.dfa)
    }

    /// `L(other) ⊂ L(self)` (strict containment).
    pub fn contains_strictly(&self, other: &Pattern) -> bool {
        self.contains(other) && !other.contains(self)
    }

    /// `L(self) ∩ L(other) ≠ ∅`.
    pub fn overlaps(&self, other: &Pattern) -> bool {
        self.inner.dfa.overlaps(&other.inner.dfa)
    }

    /// `L(self) = L(other)`.
    pub fn equivalent(&self, other: &Pattern) -> bool {
        self.inner.dfa.equivalent(&other.inner.dfa)
    }

    /// Region intersection; the result's source regex is derived.
    pub fn intersect(&self, other: &Pattern) -> Pattern {
        Pattern::from_dfa(self.inner.dfa.intersect(&other.inner.dfa))
    }

    /// Region difference `self ∖ other`; the result's source regex is
    /// derived.
    pub fn subtract(&self, other: &Pattern) -> Pattern {
        Pattern::from_dfa(self.inner.dfa.difference(&other.inner.dfa))
    }

    /// Region union; the result's source regex is derived.
    pub fn union(&self, other: &Pattern) -> Pattern {
        Pattern::from_dfa(self.inner.dfa.union(&other.inner.dfa))
    }

    /// The longest literal prefix shared by every name in the region
    /// (used to turn scoped database scans into range scans).
    pub fn literal_prefix(&self) -> String {
        self.inner.dfa.literal_prefix()
    }

    /// Up to `limit` example device names in the region, shortest first.
    pub fn sample(&self, limit: usize) -> Vec<String> {
        self.inner.dfa.sample(limit)
    }

    /// Number of device names in the region if finite and ≤ `cap`.
    pub fn count(&self, cap: u64) -> Option<u64> {
        self.inner.dfa.count_strings(cap)
    }
}

impl std::fmt::Debug for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pattern({})", self.src)
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.src)
    }
}

impl PartialEq for Pattern {
    /// Language equivalence, not source-string equality.
    fn eq(&self, other: &Self) -> bool {
        self.equivalent(other)
    }
}

impl Eq for Pattern {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_and_regex_agree() {
        let g = Pattern::from_glob("dc1.pod3.*").unwrap();
        let r = Pattern::new(r"dc1\.pod3\..*").unwrap();
        assert!(g.equivalent(&r));
        assert_eq!(g, r);
    }

    #[test]
    fn containment_partial_order() {
        let a = Pattern::from_glob("dc1.*").unwrap();
        let b = Pattern::from_glob("dc1.pod3.*").unwrap();
        let c = Pattern::from_glob("dc1.pod3.rack1.*").unwrap();
        assert!(a.contains(&b) && b.contains(&c) && a.contains(&c));
        assert!(a.contains_strictly(&b));
        assert!(!b.contains_strictly(&b));
    }

    #[test]
    fn subtract_then_union_restores() {
        let a = Pattern::new(r"dc1\.pod[0-4]\..*").unwrap();
        let b = Pattern::new(r"dc1\.pod3\..*").unwrap();
        let rest = a.subtract(&b);
        assert!(!rest.overlaps(&b));
        assert!(rest.union(&b).equivalent(&a));
    }

    #[test]
    fn from_names_matches_exactly() {
        let p = Pattern::from_names(&["dc1.pod1.tor1", "dc1.pod2.tor5"]).unwrap();
        assert!(p.matches("dc1.pod1.tor1"));
        assert!(p.matches("dc1.pod2.tor5"));
        assert!(!p.matches("dc1.pod1.tor2"));
        assert_eq!(p.count(100), Some(2));
        // The readable source must itself compile to the same language.
        let re = Pattern::new(p.source()).unwrap();
        assert!(re.equivalent(&p));
    }

    #[test]
    fn from_names_empty_is_empty_language() {
        let p = Pattern::from_names::<&str>(&[]).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn derived_pattern_source_reparses() {
        let a = Pattern::from_glob("dc1.pod1.*").unwrap();
        let b = Pattern::from_glob("dc1.*").unwrap();
        let i = b.intersect(&a);
        let re = Pattern::new(i.source()).unwrap();
        assert!(re.equivalent(&a));
    }

    #[test]
    fn universe_contains_everything() {
        let u = Pattern::universe();
        let a = Pattern::from_glob("dc1.*").unwrap();
        assert!(u.contains(&a));
        assert!(u.matches(""));
        assert!(u.matches("anything.at-all_0"));
    }

    #[test]
    fn is_universe_detection() {
        assert!(Pattern::universe().is_universe());
        assert!(Pattern::new("[a-z0-9._\\-]*").unwrap().is_universe());
        assert!(!Pattern::from_glob("dc1.*").unwrap().is_universe());
        assert!(!Pattern::new("[]").unwrap().is_universe());
    }

    #[test]
    fn relate_agrees_with_predicates() {
        let a = Pattern::from_glob("dc1.*").unwrap();
        let b = Pattern::from_glob("dc1.pod3.*").unwrap();
        let b2 = Pattern::new(r"dc1\.pod[1-3]\..*").unwrap();
        let c = Pattern::new(r"dc1\.pod[2-4]\..*").unwrap();
        let d = Pattern::from_glob("dc2.*").unwrap();
        assert_eq!(a.relate(&a), Relation::Equal);
        assert_eq!(a.relate(&b), Relation::ProperSuperset);
        assert_eq!(b.relate(&a), Relation::ProperSubset);
        assert_eq!(b2.relate(&c), Relation::Overlap);
        assert_eq!(a.relate(&d), Relation::Disjoint);
    }

    #[test]
    fn fingerprint_is_language_level_and_stable() {
        let g = Pattern::from_glob("dc1.pod3.*").unwrap();
        let r = Pattern::new(r"dc1\.pod3\..*").unwrap();
        assert_eq!(g.fingerprint(), r.fingerprint());
        assert_eq!(g.fingerprint(), g.clone().fingerprint());
        let other = Pattern::from_glob("dc1.pod4.*").unwrap();
        assert_ne!(g.fingerprint(), other.fingerprint());
        // Derived patterns fingerprint by language too.
        let derived = Pattern::universe().intersect(&g);
        assert_eq!(derived.fingerprint(), g.fingerprint());
    }
}
