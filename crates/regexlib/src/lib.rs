//! # occam-regex
//!
//! A self-contained regex/automata engine over the network
//! device-identifier space, standing in for the `greenery` FSM library used
//! by the Occam paper (reference \[34\] there).
//!
//! Network regions in Occam are scoped by regexes over hierarchical device
//! names (`dc01.pod03.rack07.tor2`). The object tree (paper §4) needs a
//! *closed algebra* on those regions — intersection, difference,
//! containment, overlap — whose results are again valid regexes. This crate
//! provides that algebra:
//!
//! - [`parse`] / [`Ast`]: a restricted regex dialect over a 39-symbol
//!   alphabet (`a`–`z`, `0`–`9`, `.`, `-`, `_`).
//! - [`Nfa`] / [`Dfa`]: Thompson construction, subset construction,
//!   minimization, and boolean product operations on complete DFAs.
//! - [`dfa_to_regex`]: GNFA state elimination, so every derived region has a
//!   regex representation.
//! - [`Pattern`]: the high-level symbolic-region type used by the rest of
//!   the system.
//! - [`PatternCache`]: the regex/FSM cache the paper describes in §7.
//!
//! # Examples
//!
//! ```
//! use occam_regex::Pattern;
//!
//! let scope = Pattern::from_glob("dc1.pod[0-4].*").unwrap();
//! let busy = Pattern::from_glob("dc1.pod3.*").unwrap();
//! assert!(scope.contains(&busy));
//!
//! // Split: the part of `scope` not already claimed by `busy`.
//! let rest = scope.subtract(&busy);
//! assert!(!rest.overlaps(&busy));
//! assert!(rest.union(&busy).equivalent(&scope));
//! ```

pub mod alphabet;
pub mod ast;
pub mod cache;
pub mod dfa;
pub mod nfa;
pub mod parser;
pub mod pattern;
pub mod toregex;

pub use alphabet::{SymSet, NSYM};
pub use ast::Ast;
pub use cache::{CacheStats, PatternCache};
pub use dfa::{product_ops, Dfa, Relation};
pub use nfa::Nfa;
pub use parser::{glob_to_regex, parse, ParseError};
pub use pattern::Pattern;
pub use toregex::{dfa_to_ast, dfa_to_regex};
