//! Thompson construction from [`Ast`] to an ε-NFA.

use crate::alphabet::SymSet;
use crate::ast::Ast;

/// One NFA state: ε-successors plus labelled successors.
#[derive(Clone, Default, Debug)]
pub struct NfaState {
    /// ε-transitions out of this state.
    pub eps: Vec<u32>,
    /// Labelled transitions: consume one symbol from the set, go to target.
    pub trans: Vec<(SymSet, u32)>,
}

/// An ε-NFA with a single start and single accept state, as produced by
/// Thompson construction.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// The state arena.
    pub states: Vec<NfaState>,
    /// Start state index.
    pub start: u32,
    /// Accept state index.
    pub accept: u32,
}

impl Nfa {
    fn new_state(&mut self) -> u32 {
        self.states.push(NfaState::default());
        (self.states.len() - 1) as u32
    }

    fn add_eps(&mut self, from: u32, to: u32) {
        self.states[from as usize].eps.push(to);
    }

    fn add_trans(&mut self, from: u32, set: SymSet, to: u32) {
        self.states[from as usize].trans.push((set, to));
    }

    /// Builds the NFA fragment for `ast` between fresh start/accept states,
    /// returning `(start, accept)`.
    fn build(&mut self, ast: &Ast) -> (u32, u32) {
        match ast {
            Ast::Empty => {
                // Two unconnected states: no path start → accept.
                let s = self.new_state();
                let a = self.new_state();
                (s, a)
            }
            Ast::Epsilon => {
                let s = self.new_state();
                let a = self.new_state();
                self.add_eps(s, a);
                (s, a)
            }
            Ast::Class(set) => {
                let s = self.new_state();
                let a = self.new_state();
                self.add_trans(s, *set, a);
                (s, a)
            }
            Ast::Concat(parts) => {
                debug_assert!(!parts.is_empty(), "smart constructor guarantees non-empty");
                let mut iter = parts.iter();
                let first = iter.next().expect("non-empty concat");
                let (s, mut a) = self.build(first);
                for p in iter {
                    let (ps, pa) = self.build(p);
                    self.add_eps(a, ps);
                    a = pa;
                }
                (s, a)
            }
            Ast::Alt(parts) => {
                let s = self.new_state();
                let a = self.new_state();
                for p in parts {
                    let (ps, pa) = self.build(p);
                    self.add_eps(s, ps);
                    self.add_eps(pa, a);
                }
                (s, a)
            }
            Ast::Star(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                let (is, ia) = self.build(inner);
                self.add_eps(s, is);
                self.add_eps(s, a);
                self.add_eps(ia, is);
                self.add_eps(ia, a);
                (s, a)
            }
        }
    }

    /// Constructs an NFA recognizing the language of `ast`.
    pub fn from_ast(ast: &Ast) -> Nfa {
        let mut nfa = Nfa {
            states: Vec::new(),
            start: 0,
            accept: 0,
        };
        let (s, a) = nfa.build(ast);
        nfa.start = s;
        nfa.accept = a;
        nfa
    }

    /// Computes the ε-closure of a set of states (sorted, deduplicated).
    pub fn eps_closure(&self, states: &[u32]) -> Vec<u32> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<u32> = Vec::with_capacity(states.len());
        for &s in states {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        let mut out = stack.clone();
        while let Some(s) = stack.pop() {
            for &t in &self.states[s as usize].eps {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Simulates the NFA directly (for cross-checking the DFA).
    fn nfa_matches(nfa: &Nfa, input: &str) -> bool {
        let mut cur = nfa.eps_closure(&[nfa.start]);
        for b in input.bytes() {
            let mut next = Vec::new();
            for &s in &cur {
                for &(set, t) in &nfa.states[s as usize].trans {
                    if set.contains(b) {
                        next.push(t);
                    }
                }
            }
            cur = nfa.eps_closure(&next);
            if cur.is_empty() {
                return false;
            }
        }
        cur.contains(&nfa.accept)
    }

    #[test]
    fn literal_match() {
        let nfa = Nfa::from_ast(&parse("abc").unwrap());
        assert!(nfa_matches(&nfa, "abc"));
        assert!(!nfa_matches(&nfa, "ab"));
        assert!(!nfa_matches(&nfa, "abcd"));
        assert!(!nfa_matches(&nfa, ""));
    }

    #[test]
    fn star_and_alt() {
        let nfa = Nfa::from_ast(&parse("(ab|c)*").unwrap());
        for ok in ["", "ab", "c", "abc", "cab", "ababcc"] {
            assert!(nfa_matches(&nfa, ok), "{ok}");
        }
        for bad in ["a", "b", "ba", "abx"] {
            assert!(!nfa_matches(&nfa, bad), "{bad}");
        }
    }

    #[test]
    fn empty_language_matches_nothing() {
        let nfa = Nfa::from_ast(&parse("[]").unwrap());
        assert!(!nfa_matches(&nfa, ""));
        assert!(!nfa_matches(&nfa, "a"));
    }

    #[test]
    fn scope_pattern() {
        let nfa = Nfa::from_ast(&parse(r"dc1\.pod[1-2]\..*").unwrap());
        assert!(nfa_matches(&nfa, "dc1.pod1.tor3"));
        assert!(nfa_matches(&nfa, "dc1.pod2."));
        assert!(!nfa_matches(&nfa, "dc1.pod3.tor1"));
        assert!(!nfa_matches(&nfa, "dc1.pod1"));
    }

    #[test]
    fn eps_closure_dedups_and_sorts() {
        let nfa = Nfa::from_ast(&parse("a*").unwrap());
        let c = nfa.eps_closure(&[nfa.start, nfa.start]);
        let mut sorted = c.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(c, sorted);
    }
}
