//! Regex abstract syntax tree and algebraic simplification.

use crate::alphabet::SymSet;

/// A regex abstract syntax tree over the device-identifier alphabet.
///
/// `Plus`, `Optional`, and bounded repetition are desugared by the parser, so
/// the tree has only the five core regular-expression constructors. This
/// keeps every downstream algorithm (Thompson construction, state
/// elimination, simplification) total over a small match.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Ast {
    /// The empty language (matches nothing).
    Empty,
    /// The empty string.
    Epsilon,
    /// One symbol drawn from a set; a literal is a singleton set.
    Class(SymSet),
    /// Concatenation of sub-expressions, in order.
    Concat(Vec<Ast>),
    /// Alternation between sub-expressions.
    Alt(Vec<Ast>),
    /// Kleene star.
    Star(Box<Ast>),
}

impl Ast {
    /// A literal single byte.
    ///
    /// Returns [`Ast::Empty`] for bytes outside the alphabet, which makes
    /// malformed input harmless rather than panicking.
    pub fn literal(b: u8) -> Ast {
        match SymSet::singleton(b) {
            Some(s) => Ast::Class(s),
            None => Ast::Empty,
        }
    }

    /// A literal string.
    pub fn literal_str(s: &str) -> Ast {
        Ast::concat(s.bytes().map(Ast::literal).collect())
    }

    /// The `.` wildcard: any single alphabet symbol.
    pub fn any() -> Ast {
        Ast::Class(SymSet::ALL)
    }

    /// The `.*` universe: any string over the alphabet.
    pub fn universe() -> Ast {
        Ast::star(Ast::any())
    }

    /// Smart concatenation constructor: flattens nested concats, drops
    /// epsilons, and collapses to `Empty` if any part is `Empty`.
    pub fn concat(parts: Vec<Ast>) -> Ast {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Ast::Empty => return Ast::Empty,
                Ast::Epsilon => {}
                Ast::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Ast::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Ast::Concat(out),
        }
    }

    /// Smart alternation constructor: flattens nested alts, drops `Empty`
    /// branches, merges sibling classes, and deduplicates branches.
    pub fn alt(parts: Vec<Ast>) -> Ast {
        let mut out: Vec<Ast> = Vec::with_capacity(parts.len());
        let mut class = SymSet::EMPTY;
        let mut saw_class = false;
        let push_unique = |v: &mut Vec<Ast>, a: Ast| {
            if !v.contains(&a) {
                v.push(a);
            }
        };
        let mut stack: Vec<Ast> = parts;
        stack.reverse();
        while let Some(p) = stack.pop() {
            match p {
                Ast::Empty => {}
                Ast::Alt(inner) => {
                    for i in inner.into_iter().rev() {
                        stack.push(i);
                    }
                }
                Ast::Class(s) => {
                    class = class.union(s);
                    saw_class = true;
                }
                other => push_unique(&mut out, other),
            }
        }
        if saw_class && !class.is_empty() {
            out.push(Ast::Class(class));
        }
        match out.len() {
            0 => Ast::Empty,
            1 => out.pop().expect("len checked"),
            _ => Ast::Alt(out),
        }
    }

    /// Smart star constructor: `∅* = ε`, `ε* = ε`, `(a*)* = a*`.
    pub fn star(inner: Ast) -> Ast {
        match inner {
            Ast::Empty | Ast::Epsilon => Ast::Epsilon,
            s @ Ast::Star(_) => s,
            other => Ast::Star(Box::new(other)),
        }
    }

    /// `a+` desugars to `a a*`.
    pub fn plus(inner: Ast) -> Ast {
        Ast::concat(vec![inner.clone(), Ast::star(inner)])
    }

    /// `a?` desugars to `a | ε`.
    pub fn optional(inner: Ast) -> Ast {
        match inner {
            Ast::Empty | Ast::Epsilon => Ast::Epsilon,
            other => Ast::Alt(vec![Ast::Epsilon, other]),
        }
    }

    /// `a{m,n}` desugars to `a^m (a?)^(n-m)`; `a{m,}` to `a^m a*`.
    pub fn repeat(inner: Ast, min: u32, max: Option<u32>) -> Ast {
        let mut parts = Vec::new();
        for _ in 0..min {
            parts.push(inner.clone());
        }
        match max {
            None => parts.push(Ast::star(inner)),
            Some(max) => {
                for _ in min..max {
                    parts.push(Ast::optional(inner.clone()));
                }
            }
        }
        Ast::concat(parts)
    }

    /// Returns true if the AST trivially denotes the empty language.
    ///
    /// This is syntactic: `Empty` appears only at the root after smart
    /// constructors have run.
    pub fn is_empty_lang(&self) -> bool {
        matches!(self, Ast::Empty)
    }

    /// Returns whether the language of this AST contains the empty string
    /// (nullability), computed syntactically.
    pub fn nullable(&self) -> bool {
        match self {
            Ast::Empty | Ast::Class(_) => false,
            Ast::Epsilon | Ast::Star(_) => true,
            Ast::Concat(ps) => ps.iter().all(Ast::nullable),
            Ast::Alt(ps) => ps.iter().any(Ast::nullable),
        }
    }

    /// A rough size measure (node count), used to keep state-elimination
    /// output in check and by tests.
    pub fn size(&self) -> usize {
        match self {
            Ast::Empty | Ast::Epsilon | Ast::Class(_) => 1,
            Ast::Concat(ps) | Ast::Alt(ps) => 1 + ps.iter().map(Ast::size).sum::<usize>(),
            Ast::Star(i) => 1 + i.size(),
        }
    }
}

/// Escapes a byte for display inside a regex (outside a character class).
fn escape_byte(b: u8, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    match b {
        b'.' | b'-' => write!(f, "\\{}", b as char),
        _ => write!(f, "{}", b as char),
    }
}

/// Writes a symbol set as a regex character class (or a bare literal / `.`).
fn fmt_class(s: SymSet, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    if s == SymSet::ALL {
        return write!(f, ".");
    }
    if s.len() == 1 {
        let b = s.iter_bytes().next().expect("len is 1");
        return escape_byte(b, f);
    }
    // Prefer the negated form when it is strictly smaller.
    let (set, neg) = if s.complement().len() < s.len() {
        (s.complement(), true)
    } else {
        (s, false)
    };
    write!(f, "[{}", if neg { "^" } else { "" })?;
    // Emit maximal runs of consecutive symbol indices as ranges.
    let idxs: Vec<u8> = set.iter_indices().collect();
    let mut i = 0;
    while i < idxs.len() {
        let mut j = i;
        while j + 1 < idxs.len() && idxs[j + 1] == idxs[j] + 1 {
            j += 1;
        }
        let a = crate::alphabet::sym_byte(idxs[i]);
        let b = crate::alphabet::sym_byte(idxs[j]);
        let esc = |b: u8, f: &mut std::fmt::Formatter<'_>| -> std::fmt::Result {
            // Inside a class only `-` and `]` (not in alphabet) and `^` (not
            // in alphabet) need care; escape `-` and `.` for clarity.
            match b {
                b'-' | b'.' => write!(f, "\\{}", b as char),
                _ => write!(f, "{}", b as char),
            }
        };
        // Ranges must be over bytes that are consecutive in ASCII too, or a
        // re-parse would interpret them differently; runs within `a-z` and
        // `0-9` satisfy this, runs crossing groups do not.
        let ascii_consecutive = (b as usize - a as usize) == (j - i);
        if j - i >= 2 && ascii_consecutive {
            esc(a, f)?;
            write!(f, "-")?;
            esc(b, f)?;
        } else {
            for &idx in &idxs[i..=j] {
                esc(crate::alphabet::sym_byte(idx), f)?;
            }
        }
        i = j + 1;
    }
    write!(f, "]")
}

/// Operator precedence for display: alt < concat < star/atom.
fn fmt_prec(ast: &Ast, prec: u8, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    match ast {
        Ast::Empty => write!(f, "[]"), // unmatchable class: denotes ∅
        Ast::Epsilon => write!(f, "()"),
        Ast::Class(s) => fmt_class(*s, f),
        Ast::Concat(ps) => {
            let need_paren = prec > 1;
            if need_paren {
                write!(f, "(")?;
            }
            for p in ps {
                fmt_prec(p, 2, f)?;
            }
            if need_paren {
                write!(f, ")")?;
            }
            Ok(())
        }
        Ast::Alt(ps) => {
            // `x|ε` prints as `x?` when possible.
            let non_eps: Vec<&Ast> = ps.iter().filter(|p| !matches!(p, Ast::Epsilon)).collect();
            let has_eps = non_eps.len() != ps.len();
            if has_eps && non_eps.len() == 1 {
                fmt_prec(non_eps[0], 3, f)?;
                return write!(f, "?");
            }
            let need_paren = prec > 0;
            if need_paren {
                write!(f, "(")?;
            }
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    write!(f, "|")?;
                }
                fmt_prec(p, 1, f)?;
            }
            if need_paren {
                write!(f, ")")?;
            }
            Ok(())
        }
        Ast::Star(inner) => {
            fmt_prec(inner, 3, f)?;
            write!(f, "*")
        }
    }
}

impl std::fmt::Display for Ast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_prec(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_flattens_and_propagates_empty() {
        let a = Ast::literal(b'a');
        let b = Ast::literal(b'b');
        let inner = Ast::concat(vec![a.clone(), b.clone()]);
        let outer = Ast::concat(vec![inner, Ast::literal(b'c')]);
        assert!(matches!(&outer, Ast::Concat(ps) if ps.len() == 3));
        assert_eq!(Ast::concat(vec![a, Ast::Empty, b]), Ast::Empty);
        assert_eq!(Ast::concat(vec![]), Ast::Epsilon);
        assert_eq!(Ast::concat(vec![Ast::Epsilon, Ast::Epsilon]), Ast::Epsilon);
    }

    #[test]
    fn alt_merges_classes_and_dedups() {
        let a = Ast::literal(b'a');
        let b = Ast::literal(b'b');
        let merged = Ast::alt(vec![a.clone(), b]);
        assert!(matches!(merged, Ast::Class(s) if s.len() == 2));
        let dedup = Ast::alt(vec![Ast::literal_str("xy"), Ast::literal_str("xy")]);
        assert_eq!(dedup, Ast::literal_str("xy"));
        assert_eq!(Ast::alt(vec![Ast::Empty, a.clone()]), a);
        assert_eq!(Ast::alt(vec![]), Ast::Empty);
    }

    #[test]
    fn star_idempotent_and_epsilon_rules() {
        let a = Ast::literal(b'a');
        let s = Ast::star(a.clone());
        assert_eq!(Ast::star(s.clone()), s);
        assert_eq!(Ast::star(Ast::Epsilon), Ast::Epsilon);
        assert_eq!(Ast::star(Ast::Empty), Ast::Epsilon);
    }

    #[test]
    fn repeat_desugars() {
        let a = Ast::literal(b'a');
        // a{2,3} = a a a?
        let r = Ast::repeat(a.clone(), 2, Some(3));
        assert!(matches!(&r, Ast::Concat(ps) if ps.len() == 3));
        // a{0,0} = ε
        assert_eq!(Ast::repeat(a.clone(), 0, Some(0)), Ast::Epsilon);
        // a{1,} = a a*
        let r = Ast::repeat(a, 1, None);
        assert!(matches!(&r, Ast::Concat(ps) if ps.len() == 2));
    }

    #[test]
    fn nullable_computation() {
        assert!(Ast::Epsilon.nullable());
        assert!(!Ast::literal(b'a').nullable());
        assert!(Ast::star(Ast::literal(b'a')).nullable());
        assert!(Ast::optional(Ast::literal(b'a')).nullable());
        assert!(!Ast::literal_str("ab").nullable());
    }

    #[test]
    fn display_basic_forms() {
        assert_eq!(Ast::literal_str("abc").to_string(), "abc");
        assert_eq!(Ast::universe().to_string(), ".*");
        assert_eq!(Ast::literal(b'.').to_string(), "\\.");
        let opt = Ast::optional(Ast::literal(b'a'));
        assert_eq!(opt.to_string(), "a?");
    }

    #[test]
    fn display_class_ranges() {
        let mut s = SymSet::EMPTY;
        for b in b'a'..=b'f' {
            s.insert(b);
        }
        assert_eq!(Ast::Class(s).to_string(), "[a-f]");
    }
}
