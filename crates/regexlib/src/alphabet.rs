//! The symbol alphabet for the network device-identifier space.
//!
//! Network devices are named from a constrained identifier space
//! (`dc01.pod03.rack07.tor2`), so the regex engine operates over a small,
//! fixed alphabet rather than full Unicode. This keeps DFA transition tables
//! dense and makes product constructions (intersection, difference) cheap,
//! which the object-tree `Split` operation relies on.

/// Number of symbols in the alphabet.
pub const NSYM: usize = 39;

/// The alphabet, in symbol-index order: `a`–`z`, `0`–`9`, `.`, `-`, `_`.
pub const SYMBOLS: [u8; NSYM] = [
    b'a', b'b', b'c', b'd', b'e', b'f', b'g', b'h', b'i', b'j', b'k', b'l', b'm', b'n', b'o', b'p',
    b'q', b'r', b's', b't', b'u', b'v', b'w', b'x', b'y', b'z', b'0', b'1', b'2', b'3', b'4', b'5',
    b'6', b'7', b'8', b'9', b'.', b'-', b'_',
];

/// Returns the symbol index for a byte, or `None` if the byte is outside the
/// alphabet.
pub fn sym_index(b: u8) -> Option<u8> {
    match b {
        b'a'..=b'z' => Some(b - b'a'),
        b'0'..=b'9' => Some(b - b'0' + 26),
        b'.' => Some(36),
        b'-' => Some(37),
        b'_' => Some(38),
        _ => None,
    }
}

/// Returns the byte for a symbol index.
///
/// # Panics
///
/// Panics if `idx >= NSYM`; indices are only produced by [`sym_index`] so
/// this is an internal invariant.
pub fn sym_byte(idx: u8) -> u8 {
    SYMBOLS[idx as usize]
}

/// A set of alphabet symbols, stored as a bitmask.
///
/// With 39 symbols the set fits in a `u64`. `SymSet` is the payload of
/// character-class AST nodes and of NFA transitions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymSet(pub u64);

impl SymSet {
    /// The empty set.
    pub const EMPTY: SymSet = SymSet(0);
    /// The full alphabet (what `.` matches).
    pub const ALL: SymSet = SymSet((1u64 << NSYM) - 1);

    /// Creates a singleton set from a byte.
    ///
    /// Returns `None` if the byte is outside the alphabet.
    pub fn singleton(b: u8) -> Option<SymSet> {
        sym_index(b).map(|i| SymSet(1 << i))
    }

    /// Inserts a byte into the set; returns `false` if it is outside the
    /// alphabet.
    pub fn insert(&mut self, b: u8) -> bool {
        match sym_index(b) {
            Some(i) => {
                self.0 |= 1 << i;
                true
            }
            None => false,
        }
    }

    /// Tests whether the set contains the symbol with index `idx`.
    pub fn contains_idx(&self, idx: u8) -> bool {
        self.0 & (1 << idx) != 0
    }

    /// Tests whether the set contains the byte `b`.
    pub fn contains(&self, b: u8) -> bool {
        sym_index(b).is_some_and(|i| self.contains_idx(i))
    }

    /// Returns true if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of symbols in the set.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// Set union.
    pub fn union(self, other: SymSet) -> SymSet {
        SymSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: SymSet) -> SymSet {
        SymSet(self.0 & other.0)
    }

    /// Complement with respect to the alphabet.
    pub fn complement(self) -> SymSet {
        SymSet(!self.0 & Self::ALL.0)
    }

    /// Iterates over the symbol indices in the set, ascending.
    pub fn iter_indices(self) -> impl Iterator<Item = u8> {
        (0..NSYM as u8).filter(move |i| self.contains_idx(*i))
    }

    /// Iterates over the bytes in the set, in symbol-index order.
    pub fn iter_bytes(self) -> impl Iterator<Item = u8> {
        self.iter_indices().map(sym_byte)
    }
}

impl std::fmt::Debug for SymSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SymSet{{")?;
        for b in self.iter_bytes() {
            write!(f, "{}", b as char)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, &b) in SYMBOLS.iter().enumerate() {
            assert_eq!(sym_index(b), Some(i as u8));
            assert_eq!(sym_byte(i as u8), b);
        }
    }

    #[test]
    fn out_of_alphabet_bytes_rejected() {
        for b in [b'A', b'!', b' ', b'\n', 0u8, 255u8] {
            assert_eq!(sym_index(b), None);
            assert_eq!(SymSet::singleton(b), None);
        }
    }

    #[test]
    fn all_set_has_nsym_symbols() {
        assert_eq!(SymSet::ALL.len() as usize, NSYM);
        assert!(SymSet::EMPTY.is_empty());
        assert!(!SymSet::ALL.is_empty());
    }

    #[test]
    fn complement_partitions_alphabet() {
        let mut s = SymSet::EMPTY;
        s.insert(b'a');
        s.insert(b'.');
        let c = s.complement();
        assert_eq!(s.intersect(c), SymSet::EMPTY);
        assert_eq!(s.union(c), SymSet::ALL);
        assert_eq!(c.len() as usize, NSYM - 2);
    }

    #[test]
    fn insert_and_contains() {
        let mut s = SymSet::EMPTY;
        assert!(s.insert(b'x'));
        assert!(s.insert(b'3'));
        assert!(!s.insert(b'!'));
        assert!(s.contains(b'x'));
        assert!(s.contains(b'3'));
        assert!(!s.contains(b'y'));
        assert!(!s.contains(b'!'));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_bytes_sorted_by_index() {
        let mut s = SymSet::EMPTY;
        s.insert(b'.');
        s.insert(b'a');
        s.insert(b'0');
        let v: Vec<u8> = s.iter_bytes().collect();
        assert_eq!(v, vec![b'a', b'0', b'.']);
    }
}
