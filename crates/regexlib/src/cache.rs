//! A cache for compiled patterns.
//!
//! The paper (§7) notes that the Occam runtime "caches frequently-used
//! regexes and their translated automata". Compilation cost is dominated by
//! subset construction and minimization, so the runtime funnels all pattern
//! construction through a [`PatternCache`].

use crate::parser::ParseError;
use crate::pattern::Pattern;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Cache hit/miss counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups served from the cache.
    pub hits: u64,
    /// Number of lookups that had to compile.
    pub misses: u64,
    /// Number of entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; zero when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    pattern: Pattern,
    last_used: u64,
}

struct Inner {
    map: HashMap<String, Entry>,
    /// Memoized glob → regex translations (bounded by the same capacity).
    globs: HashMap<String, String>,
    tick: u64,
    stats: CacheStats,
}

/// A bounded, thread-safe cache from regex source to compiled [`Pattern`].
///
/// Eviction is least-recently-used, implemented with a logical clock; the
/// cache is small (hundreds of scopes), so the O(n) eviction scan is
/// irrelevant next to compilation cost.
pub struct PatternCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl PatternCache {
    /// Creates a cache bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> PatternCache {
        PatternCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                globs: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// Fetches the compiled pattern for `regex`, compiling on miss.
    pub fn get(&self, regex: &str) -> Result<Pattern, ParseError> {
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.map.get_mut(regex) {
                e.last_used = tick;
                let p = e.pattern.clone();
                inner.stats.hits += 1;
                return Ok(p);
            }
            inner.stats.misses += 1;
        }
        // Compile outside the lock: compilation can be slow and other
        // threads should not serialize behind it.
        let pattern = Pattern::new(regex)?;
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        // Recheck under the lock: another thread may have compiled and
        // inserted the same key while we were compiling. Keep the existing
        // entry — clones of it elsewhere share its memoized fingerprint —
        // and do not evict for a key that needs no new slot.
        if let Some(e) = inner.map.get_mut(regex) {
            e.last_used = tick;
            return Ok(e.pattern.clone());
        }
        if inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                inner.stats.evictions += 1;
            }
        }
        inner.map.insert(
            regex.to_string(),
            Entry {
                pattern,
                last_used: tick,
            },
        );
        Ok(inner.map[regex].pattern.clone())
    }

    /// Fetches the compiled pattern for a glob-style scope, memoizing the
    /// glob → regex string translation alongside the compiled patterns.
    pub fn get_glob(&self, glob: &str) -> Result<Pattern, ParseError> {
        let memoized = self.inner.lock().globs.get(glob).cloned();
        let regex = match memoized {
            Some(r) => r,
            None => {
                let r = crate::parser::glob_to_regex(glob);
                let mut inner = self.inner.lock();
                if inner.globs.len() < self.capacity {
                    inner.globs.insert(glob.to_string(), r.clone());
                }
                r
            }
        };
        self.get(&regex)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Returns true if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and memoized translations (counters are
    /// preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.globs.clear();
    }
}

impl Default for PatternCache {
    /// A cache sized for a typical runtime: 4096 scopes.
    fn default() -> Self {
        PatternCache::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counting() {
        let cache = PatternCache::new(16);
        cache.get(r"dc1\..*").unwrap();
        cache.get(r"dc1\..*").unwrap();
        cache.get(r"dc2\..*").unwrap();
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction() {
        let cache = PatternCache::new(2);
        cache.get("a").unwrap();
        cache.get("b").unwrap();
        cache.get("a").unwrap(); // refresh a
        cache.get("c").unwrap(); // evicts b
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        cache.get("a").unwrap(); // still cached
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn parse_errors_propagate_and_do_not_cache() {
        let cache = PatternCache::new(4);
        assert!(cache.get("(").is_err());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn glob_lookup_shares_entries_with_regex_form() {
        let cache = PatternCache::new(4);
        cache.get_glob("dc1.*").unwrap();
        cache.get(r"dc1\..*").unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn racing_compiles_of_one_key_do_not_evict_or_clobber() {
        use std::sync::Arc;
        // Full cache + many threads racing on the same new key: the losers
        // of the compile race must adopt the winner's entry, not evict for
        // a slot the key already owns.
        let cache = Arc::new(PatternCache::new(2));
        cache.get("a").unwrap();
        cache.get("b").unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                c.get(r"dc1\.pod[0-9]\..*").unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1, "one slot freed, exactly once");
    }

    #[test]
    fn glob_translation_is_memoized_and_cleared() {
        let cache = PatternCache::new(4);
        cache.get_glob("dc1.pod3.*").unwrap();
        cache.get_glob("dc1.pod3.*").unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        cache.clear();
        assert!(cache.is_empty());
        cache.get_glob("dc1.pod3.*").unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let cache = Arc::new(PatternCache::new(64));
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let re = format!(r"dc{}\.pod{}\..*", t % 4, i % 10);
                    assert!(c.get(&re).is_ok());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 400);
    }
}
