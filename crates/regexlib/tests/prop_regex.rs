//! Property-based tests for the regex algebra.
//!
//! These laws are what the object tree (occam-objtree) relies on: the
//! region operations must form a boolean algebra whose results round-trip
//! through regex syntax.

use occam_regex::{dfa_to_regex, parse, Dfa, Pattern, Relation};
use proptest::prelude::*;

/// A generator of random ASTs in *source* form, so every case also
/// exercises the parser.
fn arb_regex() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        4 => prop::sample::select(vec![
            "a", "b", "c", "0", "1", r"\.", "[ab]", "[a-c]", "[^a]", ".", "x", "pod",
        ])
        .prop_map(str::to_string),
        1 => Just("()".to_string()),
        1 => Just("[]".to_string()),
    ];
    atom.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a})({b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a})|({b})")),
            inner.clone().prop_map(|a| format!("({a})*")),
            inner.clone().prop_map(|a| format!("({a})?")),
            inner.prop_map(|a| format!("({a}){{0,2}}")),
        ]
    })
}

/// Random pod-range scopes like the object tree sees: contiguous pod
/// intervals inside one of two datacenters, optionally narrowed to a rack
/// interval. Pairs drawn from this family hit every [`Relation`] variant.
fn arb_pod_range() -> impl Strategy<Value = String> {
    (
        0u8..2,
        0u8..6,
        0u8..6,
        prop_oneof![2 => Just(None), 1 => (0u8..4, 0u8..4).prop_map(Some)],
    )
        .prop_map(|(dc, p1, p2, rack)| {
            let (plo, phi) = (p1.min(p2), p1.max(p2));
            let dc = dc + 1;
            match rack {
                None => format!(r"dc{dc}\.pod[{plo}-{phi}]\..*"),
                Some((r1, r2)) => {
                    let (rlo, rhi) = (r1.min(r2), r1.max(r2));
                    format!(r"dc{dc}\.pod[{plo}-{phi}]\.rack[{rlo}-{rhi}]\..*")
                }
            }
        })
}

/// Random device-name-like inputs to probe language membership.
fn arb_input() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop::sample::select(vec!['a', 'b', 'c', 'x', '0', '1', '.', 'p', 'o', 'd']),
        0..8,
    )
    .prop_map(|v| v.into_iter().collect())
}

fn compile(src: &str) -> Dfa {
    Dfa::from_ast(&parse(src).expect("generator produces valid regexes"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Display/parse round trip preserves the language.
    #[test]
    fn display_round_trip(src in arb_regex()) {
        let ast = parse(&src).unwrap();
        let printed = ast.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse of {printed:?} failed: {e}"));
        let d1 = Dfa::from_ast(&ast);
        let d2 = Dfa::from_ast(&reparsed);
        prop_assert!(d1.equivalent(&d2), "{src:?} -> {printed:?} changed language");
    }

    /// DFA -> regex -> DFA preserves the language.
    #[test]
    fn dfa_to_regex_round_trip(src in arb_regex()) {
        let d = compile(&src);
        let back = dfa_to_regex(&d);
        let d2 = compile(&back);
        prop_assert!(d.equivalent(&d2), "{src:?} -> {back:?} changed language");
    }

    /// Intersection commutes and is correct pointwise.
    #[test]
    fn intersection_commutes(a in arb_regex(), b in arb_regex(), input in arb_input()) {
        let da = compile(&a);
        let db = compile(&b);
        let ab = da.intersect(&db);
        let ba = db.intersect(&da);
        prop_assert!(ab.equivalent(&ba));
        prop_assert_eq!(ab.matches(&input), da.matches(&input) && db.matches(&input));
    }

    /// Union is correct pointwise and contains both operands.
    #[test]
    fn union_pointwise(a in arb_regex(), b in arb_regex(), input in arb_input()) {
        let da = compile(&a);
        let db = compile(&b);
        let u = da.union(&db);
        prop_assert_eq!(u.matches(&input), da.matches(&input) || db.matches(&input));
        prop_assert!(u.contains_lang(&da));
        prop_assert!(u.contains_lang(&db));
    }

    /// Difference is disjoint from the subtrahend and restores under union.
    #[test]
    fn difference_laws(a in arb_regex(), b in arb_regex()) {
        let da = compile(&a);
        let db = compile(&b);
        let diff = da.difference(&db);
        prop_assert!(!diff.overlaps(&db));
        let restored = diff.union(&da.intersect(&db));
        prop_assert!(restored.equivalent(&da));
    }

    /// Containment is a partial order consistent with membership.
    #[test]
    fn containment_consistent(a in arb_regex(), b in arb_regex(), input in arb_input()) {
        let da = compile(&a);
        let db = compile(&b);
        prop_assert!(da.contains_lang(&da));
        if da.contains_lang(&db) && db.matches(&input) {
            prop_assert!(da.matches(&input));
        }
        if da.contains_lang(&db) && db.contains_lang(&da) {
            prop_assert!(da.equivalent(&db));
        }
    }

    /// Minimization never changes the language and never grows the machine.
    #[test]
    fn minimize_preserves_language(src in arb_regex(), input in arb_input()) {
        let ast = parse(&src).unwrap();
        let nfa = occam_regex::Nfa::from_ast(&ast);
        let raw = Dfa::from_nfa(&nfa);
        let min = raw.minimize();
        prop_assert_eq!(raw.matches(&input), min.matches(&input));
        prop_assert!(min.num_states() <= raw.num_states());
        prop_assert!(raw.equivalent(&min));
    }

    /// Complement is an involution and partitions membership.
    #[test]
    fn complement_involution(src in arb_regex(), input in arb_input()) {
        let d = compile(&src);
        let c = d.complement();
        prop_assert_eq!(d.matches(&input), !c.matches(&input));
        prop_assert!(c.complement().equivalent(&d));
    }

    /// Samples are members; count agrees with sampling for finite languages.
    #[test]
    fn samples_are_members(src in arb_regex()) {
        let d = compile(&src);
        let samples = d.sample(20);
        for s in &samples {
            prop_assert!(d.matches(s), "sample {s:?} of {src:?} not a member");
        }
        if let Some(n) = d.count_strings(20) {
            prop_assert_eq!(samples.len() as u64, n.min(20));
        }
    }

    /// The single-walk relation agrees with the four standalone predicates
    /// on randomized pod-range scopes, and fingerprint equality coincides
    /// with language equivalence.
    #[test]
    fn relate_agrees_with_four_predicates(a in arb_pod_range(), b in arb_pod_range()) {
        let pa = Pattern::new(&a).unwrap();
        let pb = Pattern::new(&b).unwrap();
        let (eq, a_in_b, b_in_a, over) = (
            pa.equivalent(&pb),
            pb.contains(&pa),
            pa.contains(&pb),
            pa.overlaps(&pb),
        );
        let want = if eq {
            Relation::Equal
        } else if a_in_b {
            Relation::ProperSubset
        } else if b_in_a {
            Relation::ProperSuperset
        } else if over {
            Relation::Overlap
        } else {
            Relation::Disjoint
        };
        let got = pa.relate(&pb);
        prop_assert_eq!(got, want, "{} vs {}", a, b);
        prop_assert_eq!(pb.relate(&pa), want.flip());
        prop_assert_eq!(pa.fingerprint() == pb.fingerprint(), eq, "{} vs {}", a, b);
    }

    /// Pattern::from_names matches exactly the listed names.
    #[test]
    fn from_names_exact(names in proptest::collection::vec("[a-c]{1,4}(\\.[a-c0-3]{1,3})?", 0..6)) {
        let p = Pattern::from_names(&names).unwrap();
        for n in &names {
            prop_assert!(p.matches(n));
        }
        prop_assert!(!p.matches("zzz.unrelated"));
        let unique: std::collections::HashSet<_> = names.iter().collect();
        prop_assert_eq!(p.count(1000), Some(unique.len() as u64));
    }
}
