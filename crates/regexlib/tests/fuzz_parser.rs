//! Fuzz-style robustness tests: the parser must never panic and must
//! either produce a compilable AST or a structured error, for arbitrary
//! byte soup.

use occam_regex::{parse, Dfa, Pattern};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII input: parse returns Ok or Err, never panics, and
    /// Ok results compile and round-trip through display.
    #[test]
    fn parser_is_total_on_ascii(input in "[ -~]{0,24}") {
        if let Ok(ast) = parse(&input) {
            let dfa = Dfa::from_ast(&ast);
            let printed = ast.to_string();
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("display of {input:?} unparseable: {e}"));
            prop_assert!(Dfa::from_ast(&reparsed).equivalent(&dfa));
        }
    }

    /// Arbitrary bytes (incl. non-ASCII): still no panics.
    #[test]
    fn parser_is_total_on_bytes(input in proptest::collection::vec(any::<u8>(), 0..16)) {
        let s = String::from_utf8_lossy(&input).to_string();
        let _ = parse(&s);
        let _ = Pattern::new(&s);
        let _ = Pattern::from_glob(&s);
    }

    /// Matching is total for any compiled pattern and any input string.
    #[test]
    fn matching_is_total(pattern in "[a-c.*|()\\[\\]\\-?+0-9]{0,12}", input in "[ -~]{0,16}") {
        if let Ok(p) = Pattern::new(&pattern) {
            let _ = p.matches(&input);
            let _ = p.is_empty();
            let _ = p.sample(3);
            let _ = p.count(100);
        }
    }
}
