//! Pins the cost model of the relation engine: one `relate_lang` call is
//! exactly ONE product walk, while the four standalone predicates cost one
//! walk each.
//!
//! This file must contain only this single test: the product-ops counter is
//! process-global, and any concurrently running test that touches the
//! language algebra would perturb the exact deltas asserted here.

use occam_regex::{product_ops, Pattern};

#[test]
fn relate_is_one_product_walk() {
    let a = Pattern::new(r"dc1\.pod[1-3]\..*").unwrap();
    let b = Pattern::new(r"dc1\.pod[3-5]\..*").unwrap();

    let before = product_ops();
    assert_eq!(a.relate(&b), occam_regex::Relation::Overlap);
    assert_eq!(product_ops() - before, 1, "relate must be a single walk");

    // The predicates it replaces: 1 walk each, 4 in total.
    let before = product_ops();
    let _ = a.equivalent(&b);
    let _ = a.contains(&b);
    let _ = b.contains(&a);
    let _ = a.overlaps(&b);
    assert_eq!(product_ops() - before, 4);

    // Fingerprints never touch the product machinery, and are memoized:
    // repeated calls stay free.
    let before = product_ops();
    let fa = a.fingerprint();
    assert_eq!(a.fingerprint(), fa);
    assert_ne!(fa, b.fingerprint());
    assert_eq!(product_ops() - before, 0);
}
