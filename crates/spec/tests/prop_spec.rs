//! Property tests for the spec compiler (DESIGN.md §17).
//!
//! Three properties over the full space of valid-by-construction specs:
//!
//! - **Abort-prefix grammar conformance** — every compiled program's
//!   execution log, aborted after any step (including with the failing
//!   entry recorded, the shape `into_report` hands to the rollback
//!   planner), parses under the Table 1 grammar. This is the theorem the
//!   static validator proves by enumeration; the property test exercises
//!   it across the whole shape space rather than the handful of unit
//!   fixtures.
//! - **Parser round trip** — rendering a spec back to the text syntax
//!   and re-parsing it reproduces the same AST.
//! - **Determinism** — compilation is a pure function of the spec.

use occam_netdb::AttrValue;
use occam_rollback::{parse_log, LogEntry, OpStatus};
use occam_spec::{compile, parse_spec, validate, Spec, Strategy, Terminal, TestKind};
use proptest::prelude::*;

/// Decodes a valid-by-construction spec from random bits: every shape
/// the generator emits satisfies the semantic rules, so `validate` must
/// accept it and the conformance property runs on the full space of
/// lowerings (work-item combinations × terminal states × strategies).
fn spec_for(bits: u32) -> Spec {
    let mut spec = Spec::new("p", "dc01.pod0[0-3].*");
    if bits & 1 != 0 {
        spec.firmware = Some("fw-2.0.0".into());
    }
    if bits & 2 != 0 {
        spec.config = Some("g7".into());
    }
    if bits & 4 != 0 {
        spec.sets.push(("MTU".into(), AttrValue::Int(9000)));
    }
    match (bits >> 3) & 3 {
        1 => spec.tests = vec![TestKind::Optic],
        2 => spec.tests = vec![TestKind::Ping],
        3 => spec.tests = vec![TestKind::Optic, TestKind::Ping],
        _ => {}
    }
    spec.terminal = match (bits >> 5) & 3 {
        1 => Some(Terminal::Active),
        2 => Some(Terminal::UnderMaintenance),
        3 => Some(Terminal::Drained),
        _ => None,
    };
    if spec.terminal.is_none() && !spec.pushes() && spec.sets.is_empty() && spec.tests.is_empty() {
        // `validate` rejects no-op specs; give the empty shape some work.
        spec.terminal = Some(Terminal::Active);
    }
    let waves_ok = spec.pushes()
        && spec.tests.is_empty()
        && spec.sets.is_empty()
        && matches!(spec.terminal, None | Some(Terminal::Active));
    if bits & 0x100 != 0 && waves_ok {
        spec.strategy = Strategy::Waves;
        if bits & 0x200 != 0 {
            spec.waypoint = Some("dc01.pod00.agg*".into());
        }
    }
    spec
}

/// Renders a spec back to the text syntax (the inverse of `parse_spec`
/// for the shapes the generator emits).
fn render(spec: &Spec) -> String {
    let mut out = format!("spec {} {{\n scope {}\n", spec.name, spec.scope);
    if spec.strategy == Strategy::Waves {
        out.push_str(" strategy waves\n");
    }
    if let Some(v) = &spec.firmware {
        out.push_str(&format!(" target firmware {v}\n"));
    }
    if let Some(g) = &spec.config {
        out.push_str(&format!(" target config {g}\n"));
    }
    for (attr, value) in &spec.sets {
        match value {
            AttrValue::Int(n) => out.push_str(&format!(" set {attr} = {n}\n")),
            AttrValue::Bool(b) => out.push_str(&format!(" set {attr} = {b}\n")),
            AttrValue::Str(s) => out.push_str(&format!(" set {attr} = \"{s}\"\n")),
        }
    }
    for test in &spec.tests {
        let kind = match test {
            TestKind::Optic => "optic",
            TestKind::Ping => "ping",
        };
        out.push_str(&format!(" test {kind}\n"));
    }
    if let Some(terminal) = spec.terminal {
        let status = match terminal {
            Terminal::Active => "active",
            Terminal::UnderMaintenance => "under_maintenance",
            Terminal::Drained => "drained",
        };
        out.push_str(&format!(" ensure status {status}\n"));
    }
    if let Some(waypoint) = &spec.waypoint {
        out.push_str(&format!(" require waypoint {waypoint}\n"));
    }
    out.push_str("}\n");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A compiled program aborted after any step — including with the
    /// failing entry itself recorded — leaves an execution log the
    /// rollback grammar parses, so a mechanical rollback plan always
    /// exists.
    #[test]
    fn every_compiled_lowering_has_parseable_abort_prefixes(bits in any::<u32>()) {
        let spec = spec_for(bits);
        let steps = validate(&spec).expect("generator emits only valid specs");
        let typed: Vec<LogEntry> = steps
            .iter()
            .filter_map(|s| s.op_type().map(|t| LogEntry::ok(t, s.label())))
            .collect();
        for cut in 0..=typed.len() {
            let mut prefix = typed[..cut].to_vec();
            prop_assert!(
                parse_log(&prefix).is_ok(),
                "abort after step {cut} of {steps:?} must parse"
            );
            if let Some(last) = prefix.last_mut() {
                last.status = OpStatus::Failed;
                prop_assert!(
                    parse_log(&prefix).is_ok(),
                    "failure at step {cut} of {steps:?} must parse"
                );
            }
        }
    }

    /// Rendering a spec to the text syntax and parsing it back
    /// reproduces the same AST.
    #[test]
    fn parser_round_trips_rendered_specs(bits in any::<u32>()) {
        let spec = spec_for(bits);
        let parsed = parse_spec(&render(&spec)).expect("rendered spec must parse");
        prop_assert_eq!(parsed, spec);
    }

    /// Compilation is a pure function of the spec: same input, same
    /// lowered steps — and the lowering the compiler embeds is exactly
    /// what the validator returned.
    #[test]
    fn compilation_is_deterministic(bits in any::<u32>()) {
        let spec = spec_for(bits);
        let once = compile(spec.clone()).expect("valid spec compiles");
        let again = compile(spec.clone()).expect("valid spec compiles");
        prop_assert_eq!(once.steps(), again.steps());
        prop_assert_eq!(once.steps(), validate(&spec).unwrap().as_slice());
    }
}
