//! Static validation: semantic rules plus a mechanical proof that the
//! spec's lowering is rollback-safe.
//!
//! The mechanical half is the interesting one. Rather than trusting the
//! lowering rules by construction, the validator *enumerates every abort
//! prefix* of the lowered typed step sequence and runs each through the
//! actual Table 1 parser ([`occam_rollback::parse_log`]). A spec is
//! accepted only if a crash after any step — including after zero steps
//! and after the final step — leaves an execution log the rollback
//! planner can parse and therefore revert. This is the property the old
//! hand-built catalog workflows silently violated (status writes before
//! `DRAIN`, bare `TEST` outside a testing block): their abort logs were
//! unparseable exactly in the windows chaos testing is designed to hit.

use crate::ast::{Mode, Spec, SpecError, Strategy};
use crate::lower::{lower, LoweredStep, CONFIG_VERSION};
use occam_netdb::attrs;
use occam_rollback::{parse_log, LogEntry};

/// Attributes a spec's `set` statements may not name: admin status is
/// owned by `ensure status`, and the pushed configuration attributes are
/// owned by `target firmware` / `target config` (writing them without
/// the matching push would desynchronize devices from the database).
const RESERVED_ATTRS: &[&str] = &[
    attrs::DEVICE_STATUS,
    attrs::FIRMWARE_VERSION,
    attrs::FIRMWARE_BINARY,
    CONFIG_VERSION,
];

/// Validates a spec: semantic rules, then grammar conformance of the
/// lowering. Returns the lowered steps so the compiler does not lower
/// twice.
pub fn validate(spec: &Spec) -> Result<Vec<LoweredStep>, SpecError> {
    semantic(spec)?;
    let steps = lower(spec);
    conformance(&steps)?;
    Ok(steps)
}

fn semantic(spec: &Spec) -> Result<(), SpecError> {
    if spec.scope.is_empty() {
        return Err(SpecError::general("spec declares no `scope`"));
    }
    occam_regex::Pattern::from_glob(&spec.scope)
        .map_err(|e| SpecError::general(format!("bad scope glob `{}`: {e}", spec.scope)))?;

    match spec.mode {
        Mode::Audit { .. } => {
            if spec.expects.is_empty() {
                return Err(SpecError::general(
                    "audit spec declares no `expect` assertions",
                ));
            }
            if spec.pushes()
                || !spec.sets.is_empty()
                || !spec.tests.is_empty()
                || spec.terminal.is_some()
                || spec.waypoint.is_some()
            {
                return Err(SpecError::general(
                    "audit specs are read-only: targets, sets, tests, `ensure status`, \
                     and waypoints are not allowed",
                ));
            }
            if spec.strategy != Strategy::Direct {
                return Err(SpecError::general(
                    "audit specs use strategy `direct` (they run against one snapshot)",
                ));
            }
        }
        Mode::Apply => {
            if !spec.expects.is_empty() {
                return Err(SpecError::general(
                    "`expect` assertions require `audit` mode",
                ));
            }
            if !spec.pushes()
                && spec.sets.is_empty()
                && spec.tests.is_empty()
                && spec.terminal.is_none()
            {
                return Err(SpecError::general(
                    "spec declares no work: no targets, sets, tests, or `ensure status`",
                ));
            }
        }
    }

    for (attr, _) in &spec.sets {
        if RESERVED_ATTRS.contains(&attr.as_str()) {
            return Err(SpecError::general(format!(
                "`set {attr}` is reserved: use `ensure status` / `target firmware` / \
                 `target config` so the compiler can order it safely"
            )));
        }
    }

    if spec.waypoint.is_some() && spec.strategy != Strategy::Waves {
        return Err(SpecError::general(
            "`require waypoint` needs strategy `waves` (the wave synthesizer is what \
             model-checks the invariant)",
        ));
    }
    if spec.strategy == Strategy::Waves {
        if !spec.tests.is_empty() {
            return Err(SpecError::general(
                "wave-strategy specs cannot run tests (tests need a held region)",
            ));
        }
        if !matches!(spec.terminal, None | Some(crate::ast::Terminal::Active)) {
            return Err(SpecError::general(
                "wave-strategy specs always return devices to active service",
            ));
        }
        if !spec.pushes() {
            return Err(SpecError::general(
                "wave-strategy specs need `target firmware` or `target config` \
                 (plain sets have no wave semantics)",
            ));
        }
        if !spec.sets.is_empty() {
            return Err(SpecError::general(
                "wave-strategy specs cannot carry plain `set`s: the diff engine \
                 only tracks pushed configuration attributes",
            ));
        }
    }
    Ok(())
}

/// The mechanical grammar check: every abort prefix of the typed step
/// sequence must parse under Table 1.
fn conformance(steps: &[LoweredStep]) -> Result<(), SpecError> {
    let typed: Vec<LogEntry> = steps
        .iter()
        .filter_map(|s| s.op_type().map(|t| LogEntry::ok(t, s.label())))
        .collect();
    for cut in 0..=typed.len() {
        if let Err(e) = parse_log(&typed[..cut]) {
            return Err(SpecError::general(format!(
                "lowering is not rollback-safe: abort after step {cut} leaves an \
                 unparseable log ({e})"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Terminal, TestKind};
    use occam_netdb::{Assertion, AttrValue};

    fn ok(spec: &Spec) {
        validate(spec).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }

    fn rejected(spec: &Spec, needle: &str) {
        let err = validate(spec).expect_err(&spec.name.clone());
        assert!(err.msg.contains(needle), "{}: {err}", spec.name);
    }

    #[test]
    fn accepts_the_standard_workflow_shapes() {
        let mut drain = Spec::new("drain", "dc01.*");
        drain.terminal = Some(Terminal::UnderMaintenance);
        ok(&drain);

        let mut undrain = Spec::new("undrain", "dc01.*");
        undrain.terminal = Some(Terminal::Active);
        ok(&undrain);

        let mut maint = Spec::new("maint", "dc01.*");
        maint.terminal = Some(Terminal::Active);
        maint.tests = vec![TestKind::Optic, TestKind::Ping];
        ok(&maint);

        let mut fw = Spec::new("fw", "dc01.*");
        fw.firmware = Some("fw-2.0.0".into());
        fw.config = Some("g3".into());
        fw.terminal = Some(Terminal::Active);
        fw.sets = vec![("MTU".into(), AttrValue::Int(9000))];
        ok(&fw);

        let mut audit = Spec::new("audit", "dc01.*");
        audit.mode = Mode::Audit { strict: true };
        audit.expects = vec![Assertion::new(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE)];
        ok(&audit);

        let mut waves = Spec::new("waves", "dc01.*");
        waves.strategy = Strategy::Waves;
        waves.config = Some("g4".into());
        waves.waypoint = Some("dc01.pod00.agg00".into());
        ok(&waves);
    }

    #[test]
    fn rejects_semantic_violations() {
        let mut empty = Spec::new("empty", "dc01.*");
        rejected(&empty, "declares no work");
        empty.scope.clear();
        rejected(&empty, "no `scope`");

        let mut reserved = Spec::new("reserved", "dc01.*");
        reserved.sets = vec![(attrs::DEVICE_STATUS.into(), "ACTIVE".into())];
        rejected(&reserved, "reserved");

        let mut audit = Spec::new("audit", "dc01.*");
        audit.mode = Mode::Audit { strict: false };
        rejected(&audit, "no `expect`");
        audit.expects = vec![Assertion::new("A", 1i64)];
        audit.firmware = Some("fw".into());
        rejected(&audit, "read-only");

        let mut expects = Spec::new("expects", "dc01.*");
        expects.terminal = Some(Terminal::Active);
        expects.expects = vec![Assertion::new("A", 1i64)];
        rejected(&expects, "require `audit`");

        let mut waypoint = Spec::new("wp", "dc01.*");
        waypoint.config = Some("g".into());
        waypoint.waypoint = Some("dc01.*".into());
        rejected(&waypoint, "strategy `waves`");

        let mut waves = Spec::new("waves", "dc01.*");
        waves.strategy = Strategy::Waves;
        waves.config = Some("g".into());
        waves.tests = vec![TestKind::Ping];
        rejected(&waves, "cannot run tests");
        waves.tests.clear();
        waves.terminal = Some(Terminal::Drained);
        rejected(&waves, "active service");
        waves.terminal = None;
        waves.config = None;
        waves.sets = vec![("MTU".into(), AttrValue::Int(1500))];
        rejected(&waves, "target firmware");
    }

    #[test]
    fn conformance_rejects_the_legacy_broken_shapes() {
        use occam_rollback::OpType;
        // Status write BEFORE the drain (old `drain` workflow): the
        // abort prefix [DB_CHANGE, DRAIN] is a mid-log broken db_list.
        let legacy_drain = [
            LogEntry::ok(OpType::DbChange, "set(DEVICE_STATUS)"),
            LogEntry::ok(OpType::Drain, "apply(f_drain)"),
        ];
        assert!(parse_log(&legacy_drain).is_err());

        // Bare test outside a testing block (old `device_maintenance`).
        let legacy_test = [
            LogEntry::ok(OpType::Drain, "apply(f_drain)"),
            LogEntry::ok(OpType::Test, "apply(f_optic_test)"),
        ];
        assert!(parse_log(&legacy_test).is_err());

        // And the validator-facing form of the same property: any spec
        // the validator accepts has no such prefix, by enumeration.
        let mut maint = Spec::new("maint", "dc01.*");
        maint.terminal = Some(Terminal::Active);
        maint.tests = vec![TestKind::Optic];
        let steps = validate(&maint).unwrap();
        let typed: Vec<LogEntry> = steps
            .iter()
            .filter_map(|s| s.op_type().map(|t| LogEntry::ok(t, s.label())))
            .collect();
        for cut in 0..=typed.len() {
            parse_log(&typed[..cut]).unwrap();
        }
    }
}
