//! The spec text syntax: a small line-oriented language, plus the
//! `$param` template instantiation the gateway catalog uses.
//!
//! ```text
//! spec firmware_upgrade {
//!     # comments run to end of line
//!     scope dc01.pod03.*
//!     target firmware fw-2.0.0
//!     ensure status active
//!     test optic
//! }
//! ```
//!
//! Statements (one per line, order irrelevant except duplicates are
//! rejected):
//!
//! | statement | meaning |
//! |---|---|
//! | `scope <glob>` | region scope (required) |
//! | `strategy direct\|waves` | realization strategy (default `direct`) |
//! | `ensure status active\|under_maintenance\|drained` | terminal admin state |
//! | `target firmware <version>` | desired firmware (implies push) |
//! | `target config <generation>` | desired config generation (implies push) |
//! | `set <ATTR> = <value>` | plain database attribute |
//! | `test optic\|ping` | run a test inside the maintenance window |
//! | `audit` / `audit strict` | read-only compliance audit mode |
//! | `expect status <v>` / `expect <ATTR> = <value>` | audit assertion |
//! | `require waypoint <glob>` | waypoint invariant for wave rollouts |
//!
//! Values parse as integers, booleans, or (optionally double-quoted)
//! strings. Template instantiation substitutes `$scope` and `$<param>`
//! tokens; a line prefixed with `?` is dropped entirely when any of its
//! parameters is unbound (that is how optional workflow parameters are
//! declared), while an unbound parameter on a plain line is an error.

use crate::ast::{Mode, Spec, SpecError, Strategy, Terminal, TestKind};
use occam_netdb::{attrs, Assertion, AttrValue};
use std::collections::BTreeMap;

/// Substitutes `$scope` / `$param` tokens in `template`.
///
/// Lines starting with `?` are optional: they vanish when a referenced
/// parameter is missing. Parameter values may not contain newlines,
/// braces, or `#` (they would change the line structure being parsed).
pub fn instantiate(
    template: &str,
    scope: &str,
    params: &BTreeMap<String, String>,
) -> Result<String, SpecError> {
    let lookup = move |key: &str| {
        if key == "scope" {
            Some(scope)
        } else {
            params.get(key).map(String::as_str)
        }
    };
    let mut out = String::new();
    for (i, raw) in template.lines().enumerate() {
        let lineno = i + 1;
        let trimmed = raw.trim_start();
        let optional = trimmed.starts_with('?');
        let line = if optional { &trimmed[1..] } else { raw };
        match substitute_line(line, lineno, &lookup) {
            Ok(s) => {
                out.push_str(&s);
                out.push('\n');
            }
            Err(e) if optional => {
                // An optional line with an unbound parameter is dropped;
                // any other substitution error still surfaces.
                if !e.msg.starts_with("missing parameter") {
                    return Err(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

fn substitute_line<'a>(
    line: &str,
    lineno: usize,
    lookup: &dyn for<'k> Fn(&'k str) -> Option<&'a str>,
) -> Result<String, SpecError> {
    let mut out = String::new();
    let mut rest = line;
    while let Some(pos) = rest.find('$') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos + 1..];
        let end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(rest.len());
        let key = &rest[..end];
        if key.is_empty() {
            return Err(SpecError::at(lineno, "dangling `$` in template"));
        }
        let value = lookup(key)
            .ok_or_else(|| SpecError::at(lineno, format!("missing parameter `{key}`")))?;
        if value.contains(['\n', '{', '}', '#']) {
            return Err(SpecError::at(
                lineno,
                format!("parameter `{key}` contains characters that would alter the spec syntax"),
            ));
        }
        out.push_str(value);
        rest = &rest[end..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Strips a `#` comment and surrounding whitespace.
fn clean(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => line[..pos].trim(),
        None => line.trim(),
    }
}

/// Parses a value token: integers, booleans, quoted or bare strings.
fn parse_value(token: &str, lineno: usize) -> Result<AttrValue, SpecError> {
    let token = token.trim();
    if token.is_empty() {
        return Err(SpecError::at(lineno, "empty value"));
    }
    if let Some(stripped) = token.strip_prefix('"') {
        let Some(inner) = stripped.strip_suffix('"') else {
            return Err(SpecError::at(lineno, "unterminated string value"));
        };
        return Ok(AttrValue::Str(inner.to_string()));
    }
    if let Ok(n) = token.parse::<i64>() {
        return Ok(AttrValue::Int(n));
    }
    match token {
        "true" => Ok(AttrValue::Bool(true)),
        "false" => Ok(AttrValue::Bool(false)),
        _ => Ok(AttrValue::Str(token.to_string())),
    }
}

fn parse_status(token: &str, lineno: usize) -> Result<(Terminal, &'static str), SpecError> {
    match token {
        "active" => Ok((Terminal::Active, attrs::STATUS_ACTIVE)),
        "under_maintenance" => Ok((Terminal::UnderMaintenance, attrs::STATUS_UNDER_MAINTENANCE)),
        "drained" => Ok((Terminal::Drained, attrs::STATUS_DRAINED)),
        other => Err(SpecError::at(
            lineno,
            format!("unknown status `{other}` (expected active, under_maintenance, or drained)"),
        )),
    }
}

/// Splits `A = v` into `(A, v)`.
fn split_assign(rest: &str, lineno: usize) -> Result<(&str, &str), SpecError> {
    let Some((attr, value)) = rest.split_once('=') else {
        return Err(SpecError::at(lineno, "expected `<ATTR> = <value>`"));
    };
    let attr = attr.trim();
    if attr.is_empty() {
        return Err(SpecError::at(lineno, "empty attribute name"));
    }
    Ok((attr, value))
}

/// Parses spec source text into a [`Spec`]. Purely syntactic — semantic
/// and grammar-conformance checks live in [`crate::validate()`], which
/// [`crate::compile()`] always runs.
pub fn parse_spec(src: &str) -> Result<Spec, SpecError> {
    let mut spec: Option<Spec> = None;
    let mut closed = false;
    let mut saw_scope = false;
    for (i, raw) in src.lines().enumerate() {
        let lineno = i + 1;
        let line = clean(raw);
        if line.is_empty() {
            continue;
        }
        if closed {
            return Err(SpecError::at(lineno, "content after closing `}`"));
        }
        let Some(spec) = spec.as_mut() else {
            // Expect the header.
            let Some(rest) = line.strip_prefix("spec ") else {
                return Err(SpecError::at(lineno, "expected `spec <name> {`"));
            };
            let Some(name) = rest.trim().strip_suffix('{') else {
                return Err(SpecError::at(lineno, "expected `{` after spec name"));
            };
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(SpecError::at(lineno, "spec name must be [A-Za-z0-9_]+"));
            }
            spec = Some(Spec::new(name, ""));
            continue;
        };
        if line == "}" {
            closed = true;
            continue;
        }
        let (stmt, rest) = match line.split_once(char::is_whitespace) {
            Some((s, r)) => (s, r.trim()),
            None => (line, ""),
        };
        match stmt {
            "scope" => {
                if saw_scope {
                    return Err(SpecError::at(lineno, "duplicate `scope`"));
                }
                if rest.is_empty() {
                    return Err(SpecError::at(lineno, "`scope` needs a glob"));
                }
                spec.scope = rest.to_string();
                saw_scope = true;
            }
            "strategy" => {
                spec.strategy = match rest {
                    "direct" => Strategy::Direct,
                    "waves" => Strategy::Waves,
                    other => {
                        return Err(SpecError::at(
                            lineno,
                            format!("unknown strategy `{other}` (expected direct or waves)"),
                        ))
                    }
                };
            }
            "ensure" => {
                let Some(status) = rest.strip_prefix("status ") else {
                    return Err(SpecError::at(lineno, "expected `ensure status <state>`"));
                };
                if spec.terminal.is_some() {
                    return Err(SpecError::at(lineno, "duplicate `ensure status`"));
                }
                spec.terminal = Some(parse_status(status.trim(), lineno)?.0);
            }
            "target" => match rest.split_once(char::is_whitespace) {
                Some(("firmware", v)) => {
                    if spec.firmware.is_some() {
                        return Err(SpecError::at(lineno, "duplicate `target firmware`"));
                    }
                    spec.firmware = Some(v.trim().to_string());
                }
                Some(("config", v)) => {
                    if spec.config.is_some() {
                        return Err(SpecError::at(lineno, "duplicate `target config`"));
                    }
                    spec.config = Some(v.trim().to_string());
                }
                _ => {
                    return Err(SpecError::at(
                        lineno,
                        "expected `target firmware <v>` or `target config <g>`",
                    ))
                }
            },
            "set" => {
                let (attr, value) = split_assign(rest, lineno)?;
                spec.sets
                    .push((attr.to_string(), parse_value(value, lineno)?));
            }
            "test" => {
                let kind = match rest {
                    "optic" => TestKind::Optic,
                    "ping" => TestKind::Ping,
                    other => {
                        return Err(SpecError::at(
                            lineno,
                            format!("unknown test `{other}` (expected optic or ping)"),
                        ))
                    }
                };
                spec.tests.push(kind);
            }
            "audit" => {
                spec.mode = match rest {
                    "" => Mode::Audit { strict: false },
                    "strict" => Mode::Audit { strict: true },
                    other => {
                        return Err(SpecError::at(
                            lineno,
                            format!("unexpected `{other}` after `audit`"),
                        ))
                    }
                };
            }
            "expect" => {
                if let Some(status) = rest.strip_prefix("status ") {
                    let (_, value) = parse_status(status.trim(), lineno)?;
                    spec.expects
                        .push(Assertion::new(attrs::DEVICE_STATUS, value));
                } else {
                    let (attr, value) = split_assign(rest, lineno)?;
                    spec.expects
                        .push(Assertion::new(attr, parse_value(value, lineno)?));
                }
            }
            "require" => {
                let Some(glob) = rest.strip_prefix("waypoint ") else {
                    return Err(SpecError::at(lineno, "expected `require waypoint <glob>`"));
                };
                if spec.waypoint.is_some() {
                    return Err(SpecError::at(lineno, "duplicate `require waypoint`"));
                }
                spec.waypoint = Some(glob.trim().to_string());
            }
            other => {
                return Err(SpecError::at(
                    lineno,
                    format!("unknown statement `{other}`"),
                ))
            }
        }
    }
    let Some(spec) = spec else {
        return Err(SpecError::general("empty spec source"));
    };
    if !closed {
        return Err(SpecError::general("missing closing `}`"));
    }
    if !saw_scope {
        return Err(SpecError::general("spec declares no `scope`"));
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_spec() {
        let spec = parse_spec(
            "spec firmware_upgrade {\n\
             \x20 # keep pod 3 on the new image\n\
             \x20 scope dc01.pod03.*\n\
             \x20 target firmware fw-2.0.0\n\
             \x20 set SNMP_COMMUNITY = \"ops team\"\n\
             \x20 set MTU = 9000\n\
             \x20 test optic\n\
             \x20 ensure status active\n\
             }\n",
        )
        .unwrap();
        assert_eq!(spec.name, "firmware_upgrade");
        assert_eq!(spec.scope, "dc01.pod03.*");
        assert_eq!(spec.firmware.as_deref(), Some("fw-2.0.0"));
        assert_eq!(spec.terminal, Some(Terminal::Active));
        assert_eq!(spec.tests, vec![TestKind::Optic]);
        assert_eq!(
            spec.sets,
            vec![
                ("SNMP_COMMUNITY".into(), AttrValue::Str("ops team".into())),
                ("MTU".into(), AttrValue::Int(9000)),
            ]
        );
        assert_eq!(spec.strategy, Strategy::Direct);
        assert_eq!(spec.mode, Mode::Apply);
    }

    #[test]
    fn parses_audit_spec() {
        let spec =
            parse_spec("spec status_audit {\n scope dc01.*\n audit\n expect status active\n}\n")
                .unwrap();
        assert_eq!(spec.mode, Mode::Audit { strict: false });
        assert_eq!(spec.expects.len(), 1);
        assert_eq!(spec.expects[0].attr, attrs::DEVICE_STATUS);
    }

    #[test]
    fn rejects_malformed_sources() {
        for bad in [
            "scope x\n",                                  // no header
            "spec a {\n",                                 // unclosed
            "spec a {\n}\n",                              // no scope
            "spec a {\n scope x\n frobnicate\n}\n",       // unknown statement
            "spec a {\n scope x\n test sonar\n}\n",       // unknown test
            "spec a {\n scope x\n scope y\n}\n",          // duplicate scope
            "spec a {\n scope x\n set X 1\n}\n",          // missing `=`
            "spec a {\n scope x\n}\njunk\n",              // trailing content
            "spec a {\n scope x\n ensure status on\n}\n", // bad status
        ] {
            assert!(parse_spec(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn instantiate_substitutes_and_drops_optional_lines() {
        let template = "spec fw {\n\
                        \x20 scope $scope\n\
                        \x20 target firmware $version\n\
                        ? target config $generation\n\
                        \x20 ensure status active\n\
                        }\n";
        let mut params = BTreeMap::new();
        params.insert("version".to_string(), "fw-9".to_string());
        let src = instantiate(template, "dc01.*", &params).unwrap();
        let spec = parse_spec(&src).unwrap();
        assert_eq!(spec.scope, "dc01.*");
        assert_eq!(spec.firmware.as_deref(), Some("fw-9"));
        assert_eq!(spec.config, None); // optional line dropped

        // A required parameter stays required.
        let required = "spec fw {\n scope $scope\n target firmware $version\n}\n";
        let err = instantiate(required, "dc01.*", &BTreeMap::new()).unwrap_err();
        assert!(err.msg.contains("missing parameter `version`"), "{err}");
    }

    #[test]
    fn instantiate_rejects_structure_altering_values() {
        let mut params = BTreeMap::new();
        params.insert("v".to_string(), "x\n}".to_string());
        let err =
            instantiate("spec a {\n scope $scope\n set A = $v\n}\n", "s", &params).unwrap_err();
        assert!(err.msg.contains("alter the spec syntax"));
    }
}
