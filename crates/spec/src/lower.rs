//! Lowering: from a desired-state [`Spec`] to a typed step sequence.
//!
//! The lowered sequence is the single source of truth for what an
//! apply-mode spec executes ([`crate::compile()`] interprets it step by
//! step) and for what the validator proves about it
//! ([`crate::validate()`] replays every abort prefix of the typed steps
//! through the Table 1 parser).
//!
//! The ordering rules that make every prefix parse:
//!
//! - A run of database writes is always either immediately followed by a
//!   `PUSH_CFG`, or is the final trailing segment of the program (a
//!   crash inside either shape is a legal broken `cfg_change`). In
//!   particular the status write happens *inside* the drain window as
//!   the first entry of the pushed `db_list` — never before `DRAIN`,
//!   which is the exact mid-log-`db_list` parse error the old hand-built
//!   workflows shipped with.
//! - Every `UNDRAIN` closes a `DRAIN` opened by the same program. A spec
//!   asking only to re-activate a region lowers to `DRAIN UNDRAIN` (an
//!   empty offline block) rather than a bare, unparseable `UNDRAIN`.
//! - Tests always run inside a full `PREPARE TEST* UNPREPARE` testing
//!   block, inside the drain window.

use crate::ast::{Mode, Spec, Terminal, TestKind};
use occam_netdb::{attrs, AttrValue};
use occam_rollback::OpType;

/// The configuration-generation attribute (pushed attribute; shared
/// vocabulary with `occam-update`'s diff engine).
pub const CONFIG_VERSION: &str = "CONFIG_VERSION";

/// One typed step of a lowered spec program.
#[derive(Clone, PartialEq, Debug)]
pub enum LoweredStep {
    /// `apply(f_drain)` — open the maintenance window.
    Drain,
    /// `apply(f_undrain)` — close the maintenance window.
    Undrain,
    /// `set(DEVICE_STATUS)` to the given admin state.
    SetStatus(AttrValue),
    /// `set(<attr>)` — any other database write.
    SetAttr(String, AttrValue),
    /// `apply(f_create_config)` — generate device configuration
    /// (untyped under Table 2: not part of the parsed log).
    CreateConfig,
    /// `apply(f_push)` — push configuration, optionally carrying a
    /// firmware image, to devices whose admin state must be preserved.
    Push {
        /// Firmware version to flash along with the push.
        firmware: Option<String>,
        /// True when the push happens inside a drain window (the push
        /// must not overwrite the drained admin state — case study #1).
        drained: bool,
    },
    /// `apply(f_alloc_ip)` — set up the test environment.
    Prepare,
    /// A device test inside the testing block.
    Test(TestKind),
    /// `apply(f_dealloc_ip)` — tear down the test environment.
    Unprepare,
    /// Cooperative cancellation checkpoint (no log entry).
    CheckCancelled,
}

impl LoweredStep {
    /// The Table 2 type label this step logs under, or `None` for steps
    /// outside the typed subset (they do not appear in the parsed log).
    pub fn op_type(&self) -> Option<OpType> {
        match self {
            LoweredStep::Drain => Some(OpType::Drain),
            LoweredStep::Undrain => Some(OpType::Undrain),
            LoweredStep::SetStatus(_) | LoweredStep::SetAttr(..) => Some(OpType::DbChange),
            LoweredStep::Push { .. } => Some(OpType::PushCfg),
            LoweredStep::Prepare => Some(OpType::Prepare),
            LoweredStep::Test(_) => Some(OpType::Test),
            LoweredStep::Unprepare => Some(OpType::Unprepare),
            LoweredStep::CreateConfig | LoweredStep::CheckCancelled => None,
        }
    }

    /// Human-readable label, matching the runtime's execution-log style.
    pub fn label(&self) -> String {
        match self {
            LoweredStep::Drain => "apply(f_drain)".into(),
            LoweredStep::Undrain => "apply(f_undrain)".into(),
            LoweredStep::SetStatus(_) => format!("set({})", attrs::DEVICE_STATUS),
            LoweredStep::SetAttr(attr, _) => format!("set({attr})"),
            LoweredStep::CreateConfig => "apply(f_create_config)".into(),
            LoweredStep::Push { .. } => "apply(f_push)".into(),
            LoweredStep::Prepare => "apply(f_alloc_ip)".into(),
            LoweredStep::Test(kind) => format!("apply({})", kind.func()),
            LoweredStep::Unprepare => "apply(f_dealloc_ip)".into(),
            LoweredStep::CheckCancelled => "check_cancelled".into(),
        }
    }
}

/// True when the spec's realization needs a maintenance (drain) window:
/// firmware flashes, device tests, and any declared terminal state all
/// require one. A bare config/attr push does not.
pub fn needs_offline(spec: &Spec) -> bool {
    spec.firmware.is_some() || !spec.tests.is_empty() || spec.terminal.is_some()
}

/// Lowers an apply-mode spec into its typed step sequence. Audit-mode
/// specs lower to nothing (they execute through the view cache instead);
/// wave-strategy specs use this sequence only for validation — execution
/// goes through the `occam-update` synthesizer, whose executor emits the
/// same grammar-conformant wave shape.
pub fn lower(spec: &Spec) -> Vec<LoweredStep> {
    use LoweredStep as S;
    let mut steps = Vec::new();
    if matches!(spec.mode, Mode::Audit { .. }) {
        return steps;
    }
    let pushes = spec.pushes();
    let offline = needs_offline(spec);
    let terminal = if offline {
        Some(spec.terminal.unwrap_or(Terminal::Active))
    } else {
        None
    };

    if offline {
        steps.push(S::Drain);
    }
    if pushes {
        // The pushed db_list. Inside a drain window it leads with the
        // maintenance status so a crash-revert restores status together
        // with the config attributes.
        if offline {
            steps.push(S::SetStatus(attrs::STATUS_UNDER_MAINTENANCE.into()));
        }
        if let Some(generation) = &spec.config {
            steps.push(S::SetAttr(
                CONFIG_VERSION.into(),
                generation.as_str().into(),
            ));
        }
        if let Some(version) = &spec.firmware {
            steps.push(S::SetAttr(
                attrs::FIRMWARE_VERSION.into(),
                version.as_str().into(),
            ));
            steps.push(S::SetAttr(
                attrs::FIRMWARE_BINARY.into(),
                format!("img-{version}").as_str().into(),
            ));
        }
        for (attr, value) in &spec.sets {
            steps.push(S::SetAttr(attr.clone(), value.clone()));
        }
        if spec.config.is_some() {
            steps.push(S::CreateConfig);
        }
        steps.push(S::CheckCancelled);
        steps.push(S::Push {
            firmware: spec.firmware.clone(),
            drained: offline,
        });
        steps.push(S::CheckCancelled);
    }
    if !spec.tests.is_empty() {
        steps.push(S::Prepare);
        for kind in &spec.tests {
            steps.push(S::Test(*kind));
        }
        steps.push(S::Unprepare);
        steps.push(S::CheckCancelled);
    }
    // The closing segment: plain (non-pushed) attribute writes and the
    // terminal status land as the trailing db_list, after the window is
    // resolved. A crash here is a legal trailing broken cfg_change.
    let trailing_sets = |steps: &mut Vec<S>| {
        if !pushes {
            for (attr, value) in &spec.sets {
                steps.push(S::SetAttr(attr.clone(), value.clone()));
            }
        }
    };
    match terminal {
        Some(Terminal::Active) => {
            steps.push(S::Undrain);
            trailing_sets(&mut steps);
            steps.push(S::SetStatus(attrs::STATUS_ACTIVE.into()));
        }
        Some(Terminal::UnderMaintenance) => {
            // With a push, the status already leads the pushed db_list.
            trailing_sets(&mut steps);
            if !pushes {
                steps.push(S::SetStatus(attrs::STATUS_UNDER_MAINTENANCE.into()));
            }
        }
        Some(Terminal::Drained) => {
            trailing_sets(&mut steps);
            steps.push(S::SetStatus(attrs::STATUS_DRAINED.into()));
        }
        None => trailing_sets(&mut steps),
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Strategy;

    fn typed(steps: &[LoweredStep]) -> Vec<OpType> {
        steps.iter().filter_map(LoweredStep::op_type).collect()
    }

    #[test]
    fn drain_spec_lowers_to_unterminated_offline() {
        let mut spec = Spec::new("drain", "dc01.*");
        spec.terminal = Some(Terminal::UnderMaintenance);
        assert_eq!(typed(&lower(&spec)), vec![OpType::Drain, OpType::DbChange]);
    }

    #[test]
    fn undrain_spec_lowers_to_empty_offline_block() {
        let mut spec = Spec::new("undrain", "dc01.*");
        spec.terminal = Some(Terminal::Active);
        // Never a bare UNDRAIN: the program opens its own drain window.
        assert_eq!(
            typed(&lower(&spec)),
            vec![OpType::Drain, OpType::Undrain, OpType::DbChange]
        );
    }

    #[test]
    fn maintenance_spec_wraps_tests_in_a_testing_block() {
        let mut spec = Spec::new("maint", "dc01.*");
        spec.terminal = Some(Terminal::Active);
        spec.tests = vec![TestKind::Optic];
        assert_eq!(
            typed(&lower(&spec)),
            vec![
                OpType::Drain,
                OpType::Prepare,
                OpType::Test,
                OpType::Unprepare,
                OpType::Undrain,
                OpType::DbChange,
            ]
        );
    }

    #[test]
    fn firmware_spec_pushes_inside_the_drain_window() {
        let mut spec = Spec::new("fw", "dc01.*");
        spec.firmware = Some("fw-2.0.0".into());
        spec.terminal = Some(Terminal::Active);
        let steps = lower(&spec);
        assert_eq!(
            typed(&steps),
            vec![
                OpType::Drain,
                OpType::DbChange, // DEVICE_STATUS = UNDER_MAINTENANCE
                OpType::DbChange, // FIRMWARE_VERSION
                OpType::DbChange, // FIRMWARE_BINARY
                OpType::PushCfg,
                OpType::Undrain,
                OpType::DbChange, // DEVICE_STATUS = ACTIVE
            ]
        );
        assert!(steps.iter().any(|s| matches!(
            s,
            LoweredStep::Push {
                firmware: Some(v),
                drained: true
            } if v == "fw-2.0.0"
        )));
    }

    #[test]
    fn config_only_spec_needs_no_drain() {
        let mut spec = Spec::new("cfg", "dc01.*");
        spec.config = Some("g9".into());
        let steps = lower(&spec);
        assert_eq!(typed(&steps), vec![OpType::DbChange, OpType::PushCfg]);
        assert!(steps.contains(&LoweredStep::CreateConfig));
        assert!(steps.iter().any(|s| matches!(
            s,
            LoweredStep::Push {
                firmware: None,
                drained: false
            }
        )));
    }

    #[test]
    fn plain_sets_trail_without_a_push() {
        let mut spec = Spec::new("sets", "dc01.*");
        spec.sets = vec![("MTU".into(), AttrValue::Int(9000))];
        assert_eq!(typed(&lower(&spec)), vec![OpType::DbChange]);
    }

    #[test]
    fn audit_specs_lower_to_nothing() {
        let mut spec = Spec::new("audit", "dc01.*");
        spec.mode = Mode::Audit { strict: false };
        spec.strategy = Strategy::Direct;
        assert!(lower(&spec).is_empty());
    }
}
