//! The spec compiler: the only factory of executable workflow programs.
//!
//! [`compile`] validates a [`Spec`] and wraps it as a [`Compiled`]
//! program; [`template_program`] is the gateway-catalog entry point that
//! defers the whole instantiate → parse → validate → compile pipeline to
//! task execution time (so a missing required parameter surfaces as a
//! normal task failure, not a submission error — the engine's retry
//! policy and error reporting already handle those).
//!
//! Three realizations:
//!
//! - **Direct apply**: one region acquisition under strict 2PL, then a
//!   straight interpretation of the lowered step sequence. The sequence
//!   is exactly what the validator proved rollback-safe.
//! - **Audit**: a lock-free snapshot read evaluated through the netdb
//!   incremental view cache ([`occam_netdb::ViewCache`]) — repeated
//!   audits over a quiescent region cost O(dirty shards), not
//!   O(network).
//! - **Waves**: the consistent-update coordinator — diff the declared
//!   target against the live store, synthesize an invariant-checked wave
//!   plan, execute it wave by wave (`occam-update`). The target snapshot
//!   is built with [`occam_netdb::StoreSnapshot::overlay`], so the diff costs
//!   O(scope), not O(network).

use crate::ast::{Mode, Spec, SpecError, Strategy};
use crate::lower::{LoweredStep, CONFIG_VERSION};
use crate::obs::SpecObs;
use crate::parse::{instantiate, parse_spec};
use crate::validate::validate;
use occam_core::{Isolation, TaskCtx, TaskError, TaskResult};
use occam_emunet::FuncArgs;
use occam_netdb::{attrs, ComplianceReport, WalRecord};
use occam_obs::EventKind;
use occam_regex::Pattern;
use std::collections::BTreeMap;
use std::time::Instant;

/// A built management program, ready for the runtime. `Fn` (not
/// `FnOnce`): programs close over immutable compiled state, so the
/// gateway engine can re-execute them under a retry policy after
/// transient aborts.
pub type Program = Box<dyn Fn(&TaskCtx) -> TaskResult<()> + Send + 'static>;

/// A validated, lowered spec, ready to wrap as a [`Program`].
pub struct Compiled {
    spec: Spec,
    steps: Vec<LoweredStep>,
}

impl Compiled {
    /// The validated spec.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// The lowered step sequence (empty for audits and informational for
    /// wave-strategy specs, whose execution goes through the wave
    /// executor).
    pub fn steps(&self) -> &[LoweredStep] {
        &self.steps
    }

    /// True when the program only reads state.
    pub fn read_only(&self) -> bool {
        matches!(self.spec.mode, Mode::Audit { .. })
    }

    /// The isolation mode this program should run under: audits are
    /// read-only snapshot work and run OCC; everything touching devices
    /// stays pessimistic (device functions cannot be staged).
    pub fn isolation(&self) -> Isolation {
        if self.read_only() {
            Isolation::Occ { max_retries: 3 }
        } else {
            Isolation::TwoPl
        }
    }

    /// Wraps the compiled spec as an executable program.
    pub fn program(self) -> Program {
        Box::new(move |ctx| self.run(ctx))
    }

    fn run(&self, ctx: &TaskCtx) -> TaskResult<()> {
        match (&self.spec.mode, self.spec.strategy) {
            (Mode::Audit { strict }, _) => run_audit(&self.spec, *strict, ctx),
            (Mode::Apply, Strategy::Direct) => run_direct(&self.spec, &self.steps, ctx),
            (Mode::Apply, Strategy::Waves) => run_waves(&self.spec, ctx),
        }
    }
}

/// Validates and compiles a spec. This is the only path from a spec to
/// an executable program; there is no unchecked constructor.
pub fn compile(spec: Spec) -> Result<Compiled, SpecError> {
    let steps = validate(&spec)?;
    Ok(Compiled { spec, steps })
}

/// Builds a program from a spec *template* and a workflow submission
/// (scope + string parameters). Compilation is deferred to execution
/// time: the closure instantiates, parses, validates, and compiles on
/// every run, recording `spec.compiled` / `spec.rejected` /
/// `spec.compile_ns` against the runtime's registry.
pub fn template_program(
    template: &'static str,
    scope: String,
    params: BTreeMap<String, String>,
) -> Program {
    Box::new(move |ctx| {
        let obs = SpecObs::bind(ctx.runtime().obs());
        let started = Instant::now();
        let compiled = instantiate(template, &scope, &params)
            .and_then(|src| parse_spec(&src))
            .and_then(compile);
        obs.compile_ns.record_duration(started.elapsed());
        match compiled {
            Ok(compiled) => {
                obs.compiled.inc();
                compiled.run(ctx)
            }
            Err(e) => {
                obs.rejected.inc();
                Err(TaskError::Failed(e.to_string()))
            }
        }
    })
}

fn run_direct(spec: &Spec, steps: &[LoweredStep], ctx: &TaskCtx) -> TaskResult<()> {
    let region = ctx.network(&spec.scope)?;
    for step in steps {
        match step {
            LoweredStep::Drain => {
                region.apply("f_drain")?;
            }
            LoweredStep::Undrain => {
                region.apply("f_undrain")?;
            }
            LoweredStep::SetStatus(value) => {
                region.set(attrs::DEVICE_STATUS, value.clone())?;
            }
            LoweredStep::SetAttr(attr, value) => {
                region.set(attr, value.clone())?;
            }
            LoweredStep::CreateConfig => {
                region.apply("f_create_config")?;
            }
            LoweredStep::Push { firmware, drained } => {
                // `admin` always explicit: a push unaware of the drain it
                // runs inside would overwrite the admin state back to
                // active (case study #1).
                let mut args = FuncArgs::one("admin", if *drained { "drained" } else { "active" });
                if let Some(version) = firmware {
                    args = args.with("firmware", version);
                }
                region.apply_with("f_push", &args)?;
            }
            LoweredStep::Prepare => {
                region.apply("f_alloc_ip")?;
            }
            LoweredStep::Test(kind) => {
                region.apply(kind.func())?;
            }
            LoweredStep::Unprepare => {
                region.apply("f_dealloc_ip")?;
            }
            LoweredStep::CheckCancelled => ctx.check_cancelled()?,
        }
    }
    region.close();
    Ok(())
}

fn non_compliant_devices(report: &ComplianceReport) -> u64 {
    // `non_compliant` is sorted by (device, attr): distinct devices are
    // run starts.
    let mut count = 0;
    let mut last: Option<&str> = None;
    for nc in &report.non_compliant {
        if last != Some(nc.device.as_str()) {
            count += 1;
            last = Some(nc.device.as_str());
        }
    }
    count
}

fn run_audit(spec: &Spec, strict: bool, ctx: &TaskCtx) -> TaskResult<()> {
    let region = ctx.network_read(&spec.scope)?;
    // One lock-free snapshot: the whole audit evaluates against a single
    // committed version, so it can never tear across a concurrent commit
    // (and never blocks a writer).
    let view = region.view()?;
    ctx.check_cancelled()?;
    let rt = ctx.runtime();
    let report = rt
        .db()
        .views()
        .refresh(view.snapshot(), region.scope(), &spec.expects);
    let obs = SpecObs::bind(rt.obs());
    obs.audit_runs.inc();
    obs.audit_devices.add(report.devices);
    obs.audit_non_compliant.add(non_compliant_devices(&report));
    if !report.compliant() {
        rt.obs().events().record(EventKind::AuditNonCompliant {
            spec: spec.name.clone(),
            devices: report.devices,
            non_compliant: non_compliant_devices(&report),
        });
        if strict {
            return Err(TaskError::Failed(format!(
                "audit `{}` failed: {}",
                spec.name,
                report.summary(5)
            )));
        }
    }
    region.close();
    Ok(())
}

/// The consistent-update coordinator (`DESIGN.md` §15). Unlike the
/// direct interpreter it acquires **no region itself**: it snapshots the
/// database, overlays the spec's declared targets, diffs, synthesizes a
/// wave plan the model checker proves safe at every intermediate state,
/// and runs each wave as its own strict-2PL task through the plan
/// executor. Lock-order safety with concurrent workflows follows from
/// the wave tasks' single-acquisition discipline, not from the
/// coordinator.
fn run_waves(spec: &Spec, ctx: &TaskCtx) -> TaskResult<()> {
    use occam_update::{
        diff as config_diff, execute_plan, ExecOptions, ModelState, Synthesizer, TrafficClass,
        UpdateObs,
    };

    let scope = Pattern::from_glob(&spec.scope)
        .map_err(|e| TaskError::Failed(format!("bad scope glob `{}`: {e}", spec.scope)))?;
    let rt = ctx.runtime();
    let obs = UpdateObs::bind(rt.obs());

    // Build the target snapshot as an overlay over the live base: only
    // the scoped deltas are materialized, every untouched shard and
    // device record stays pointer-shared, and the diff below degenerates
    // to the delta trail. The unified read accessor pins the diff base to
    // one commit position.
    let old = rt.db().read_view();
    let mut records: Vec<WalRecord> = Vec::new();
    for name in old.select_devices(&scope) {
        if let Some(generation) = &spec.config {
            records.push(WalRecord::SetDeviceAttr {
                name: name.clone(),
                attr: CONFIG_VERSION.into(),
                value: generation.as_str().into(),
            });
        }
        if let Some(version) = &spec.firmware {
            records.push(WalRecord::SetDeviceAttr {
                name: name.clone(),
                attr: attrs::FIRMWARE_VERSION.into(),
                value: version.as_str().into(),
            });
            records.push(WalRecord::SetDeviceAttr {
                name,
                attr: attrs::FIRMWARE_BINARY.into(),
                value: format!("img-{version}").as_str().into(),
            });
        }
    }
    let target = old.snapshot().overlay(&records);
    let ops = config_diff(old.snapshot(), &target);
    obs.diff_ops.add(ops.len() as u64);
    if ops.is_empty() {
        return Ok(());
    }

    // Invariants come from the emulated network when one is wired: its
    // topology, its installed flows as traffic classes, and a waypoint
    // constraint on inspected traffic — the spec's declared `require
    // waypoint` glob when present, the network's middlebox otherwise.
    let (topo, classes) = match rt
        .service()
        .as_any()
        .downcast_ref::<occam_emunet::EmuService>()
    {
        Some(svc) => {
            let net = svc.net();
            let net = net.lock();
            let waypoint =
                match &spec.waypoint {
                    Some(glob) => Some(Pattern::from_glob(glob).map_err(|e| {
                        TaskError::Failed(format!("bad waypoint glob `{glob}`: {e}"))
                    })?),
                    None => net.middlebox.and_then(|mb| {
                        Pattern::from_names(&[net.topo.device(mb).name.as_str()]).ok()
                    }),
                };
            let classes: Vec<TrafficClass> = net
                .flows()
                .iter()
                .map(|f| {
                    let mut class =
                        TrafficClass::pair(format!("flow-{}", f.id), f.src, f.dst, f.id);
                    if f.class == occam_emunet::FlowClass::Inspected {
                        class.waypoint = waypoint.clone();
                    }
                    class
                })
                .collect();
            (net.topo.clone(), classes)
        }
        None => (occam_topology::Topology::new(), Vec::new()),
    };

    // Devices already drained in the current config start drained in the
    // model, so the planner never undrains something it did not drain
    // itself.
    let mut base = ModelState::default();
    for (name, status) in old.get_attr(&Pattern::universe(), attrs::DEVICE_STATUS) {
        let drained = status.as_str() == Some(attrs::STATUS_DRAINED)
            || status.as_str() == Some(attrs::STATUS_UNDER_MAINTENANCE);
        if drained {
            if let Some(id) = topo.device_by_name(&name) {
                base.drained.insert(id);
            }
        }
    }

    let plan = Synthesizer::new(&topo, &classes)
        .with_base(base)
        .with_obs(&obs)
        .synthesize(&ops)
        .map_err(|e| TaskError::Failed(format!("update synthesis failed: {e}")))?;
    ctx.check_cancelled()?;

    let opts = ExecOptions {
        task_prefix: format!("spec.{}", spec.name),
        obs: Some(obs),
        ..ExecOptions::default()
    };
    let report = execute_plan(rt, &plan, &opts, None);
    if !report.ok() {
        return Err(TaskError::Failed(format!(
            "planned update stopped at wave boundary {}/{}: {}",
            report.waves_committed,
            plan.waves.len(),
            report.error.unwrap_or_else(|| "unknown".into())
        )));
    }
    Ok(())
}

/// Parses, validates, and compiles spec source text in one call (the
/// programmatic mirror of [`template_program`] for sources that need no
/// parameter substitution).
pub fn compile_source(src: &str) -> Result<Compiled, SpecError> {
    compile(parse_spec(src)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_core::TaskState;

    #[test]
    fn compile_rejects_invalid_specs() {
        assert!(compile_source("spec a {\n scope dc01.*\n}\n").is_err());
        let mut reserved = Spec::new("r", "dc01.*");
        reserved.sets = vec![(attrs::DEVICE_STATUS.into(), "ACTIVE".into())];
        assert!(compile(reserved).is_err());
    }

    #[test]
    fn direct_spec_executes_and_lands_terminal_state() {
        let (rt, _ft) = harness();
        let compiled = compile_source(
            "spec fw {\n\
             \x20 scope dc01.pod00.tor*\n\
             \x20 target firmware fw-3.0.0\n\
             \x20 test optic\n\
             \x20 ensure status active\n\
             }\n",
        )
        .unwrap();
        assert!(!compiled.read_only());
        let prog = compiled.program();
        let report = rt.task("fw").run(|ctx| prog(ctx));
        assert_eq!(report.state, TaskState::Completed, "{:?}", report.error);
        let snap = rt.db().snapshot();
        let scope = Pattern::from_glob("dc01.pod00.tor*").unwrap();
        let fw = snap.get_attr(&scope, attrs::FIRMWARE_VERSION);
        assert!(!fw.is_empty());
        assert!(fw.values().all(|v| v.as_str() == Some("fw-3.0.0")));
        let statuses = snap.get_attr(&scope, attrs::DEVICE_STATUS);
        assert!(statuses
            .values()
            .all(|v| v.as_str() == Some(attrs::STATUS_ACTIVE)));
    }

    #[test]
    fn audit_spec_reports_non_compliance_without_failing() {
        let (rt, _ft) = harness();
        // Knock one device out of compliance.
        rt.db()
            .batch(&[occam_netdb::WriteOp::SetDeviceAttr {
                name: "dc01.pod00.tor00".into(),
                attr: attrs::DEVICE_STATUS.into(),
                value: attrs::STATUS_DRAINED.into(),
            }])
            .unwrap();
        let compiled =
            compile_source("spec audit {\n scope dc01.*\n audit\n expect status active\n}\n")
                .unwrap();
        assert!(compiled.read_only());
        assert!(matches!(
            compiled.isolation(),
            Isolation::Occ { max_retries: 3 }
        ));
        let prog = compiled.program();
        let report = rt.task("audit").run(|ctx| prog(ctx));
        assert_eq!(report.state, TaskState::Completed, "{:?}", report.error);
        assert_eq!(rt.obs().counter_value("spec.audit.runs"), 1);
        assert_eq!(rt.obs().counter_value("spec.audit.non_compliant"), 1);
        // The non-compliant set is reported through the event ring.
        let events = rt.obs().events().snapshot();
        assert!(events.iter().any(|e| matches!(
            &e.kind,
            EventKind::AuditNonCompliant {
                spec,
                non_compliant: 1,
                ..
            } if spec == "audit"
        )));

        // The strict variant fails the task instead.
        let strict = compile_source(
            "spec audit {\n scope dc01.*\n audit strict\n expect status active\n}\n",
        )
        .unwrap();
        let prog = strict.program();
        let report = rt.task("audit_strict").run(|ctx| prog(ctx));
        assert_eq!(report.state, TaskState::Aborted);
    }

    #[test]
    fn template_program_defers_missing_param_to_run_time() {
        let (rt, _ft) = harness();
        let template =
            "spec fw {\n scope $scope\n target firmware $version\n ensure status active\n}\n";
        let prog = template_program(template, "dc01.*".into(), BTreeMap::new());
        let report = rt.task("fw").run(|ctx| prog(ctx));
        assert_eq!(report.state, TaskState::Aborted);
        assert!(report
            .error
            .unwrap()
            .to_string()
            .contains("missing parameter `version`"));
        assert_eq!(rt.obs().counter_value("spec.rejected"), 1);
    }

    fn harness() -> (occam_core::Runtime, occam_topology::FatTree) {
        use std::sync::Arc;
        let reg = occam_obs::Registry::new();
        let ft = occam_topology::FatTree::build(1, 4).unwrap();
        let db = Arc::new(occam_netdb::Database::with_obs(&reg));
        for (_, d) in ft
            .topo
            .devices()
            .filter(|(_, d)| d.role != occam_topology::Role::Host)
        {
            db.insert_device(
                &d.name,
                vec![
                    (attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into()),
                    (attrs::FIRMWARE_VERSION.into(), "fw-1.0.0".into()),
                ],
            )
            .unwrap();
        }
        let service = Arc::new(occam_emunet::EmuService::new(
            occam_emunet::EmuNet::from_fattree(&ft),
        ));
        let rt = occam_core::Runtime::with_obs(db, service, occam_sched::Policy::Ldsf, &reg);
        (rt, ft)
    }
}
