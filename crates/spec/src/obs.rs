//! The `spec.*` metrics family (DESIGN.md §9).
//!
//! Bound eagerly by [`SpecObs::bind`], mirroring the other per-crate
//! instrument families: the contract holds before any spec compiles.

use occam_obs::{Counter, Histogram, Registry};

/// Handles for every `spec.*` instrument.
#[derive(Clone)]
pub struct SpecObs {
    /// `spec.compiled` — specs that passed validation and compiled.
    pub compiled: Counter,
    /// `spec.rejected` — specs rejected by parse or validation.
    pub rejected: Counter,
    /// `spec.compile_ns` — wall time per parse+validate+compile.
    pub compile_ns: Histogram,
    /// `spec.audit.runs` — compliance audits executed.
    pub audit_runs: Counter,
    /// `spec.audit.devices` — devices covered across audits.
    pub audit_devices: Counter,
    /// `spec.audit.non_compliant` — non-compliant devices reported.
    pub audit_non_compliant: Counter,
}

impl SpecObs {
    /// Binds (and thereby registers) every `spec.*` instrument.
    pub fn bind(reg: &Registry) -> SpecObs {
        SpecObs {
            compiled: reg.counter("spec.compiled"),
            rejected: reg.counter("spec.rejected"),
            compile_ns: reg.histogram("spec.compile_ns"),
            audit_runs: reg.counter("spec.audit.runs"),
            audit_devices: reg.counter("spec.audit.devices"),
            audit_non_compliant: reg.counter("spec.audit.non_compliant"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_registers_the_whole_family() {
        let reg = Registry::new();
        let _obs = SpecObs::bind(&reg);
        let counters: Vec<String> = reg.counters().into_iter().map(|(n, _)| n).collect();
        for name in [
            "spec.compiled",
            "spec.rejected",
            "spec.audit.runs",
            "spec.audit.devices",
            "spec.audit.non_compliant",
        ] {
            assert!(counters.iter().any(|c| c == name), "{name} missing");
        }
        assert!(reg.histograms().iter().any(|(n, _)| n == "spec.compile_ns"));
    }
}
