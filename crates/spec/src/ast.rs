//! The typed spec AST: what an operator declares, before any lowering.
//!
//! A [`Spec`] is pure desired state plus strategy hints — it names no
//! device functions and fixes no operation order. The compiler
//! ([`crate::compile()`]) owns the translation into a concrete program
//! whose every abort prefix parses under the Table 1 rollback grammar;
//! the validator ([`crate::validate()`]) rejects specs for which no such
//! translation exists.

use occam_netdb::{Assertion, AttrValue};

/// How the compiler realizes a spec.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// One region, one task: acquire the scope under strict 2PL and run
    /// the lowered step sequence directly.
    Direct,
    /// Diff → synthesize → execute: build the target snapshot, diff it
    /// against the live store, and run an invariant-checked wave plan
    /// through `occam-update` (the consistent-update coordinator).
    Waves,
}

/// Whether the spec changes the network or checks it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Drive the network toward the declared state.
    Apply,
    /// Read-only compliance audit of the declared assertions, evaluated
    /// through the incremental view cache. `strict` audits fail the task
    /// when any device is non-compliant; plain audits report the
    /// non-compliant set (counters + event ring) and succeed.
    Audit {
        /// Fail the task on any non-compliance.
        strict: bool,
    },
}

/// The admin state a region must end in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Terminal {
    /// Back in service (`DEVICE_STATUS = ACTIVE`), traffic restored.
    Active,
    /// Held out of service (`DEVICE_STATUS = UNDER_MAINTENANCE`),
    /// traffic drained.
    UnderMaintenance,
    /// Administratively drained (`DEVICE_STATUS = DRAINED`).
    Drained,
}

/// A device test the spec wants run inside the maintenance window. The
/// compiler always wraps tests in a full `PREPARE TEST* UNPREPARE`
/// testing block — a bare `TEST` is unparseable under the grammar, which
/// is exactly the latent bug the old hand-built maintenance workflow
/// shipped with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TestKind {
    /// Optical transceiver test (`f_optic_test`).
    Optic,
    /// Reachability test (`f_ping_test`).
    Ping,
}

impl TestKind {
    /// The emulated device function this test runs.
    pub fn func(self) -> &'static str {
        match self {
            TestKind::Optic => "f_optic_test",
            TestKind::Ping => "f_ping_test",
        }
    }
}

/// A parsed declarative workflow spec.
#[derive(Clone, PartialEq, Debug)]
pub struct Spec {
    /// Spec name (task/report labels).
    pub name: String,
    /// Region scope as a device-name glob.
    pub scope: String,
    /// Realization strategy.
    pub strategy: Strategy,
    /// Apply or audit.
    pub mode: Mode,
    /// Desired terminal admin state, when declared.
    pub terminal: Option<Terminal>,
    /// Desired firmware version (implies `FIRMWARE_BINARY = img-<v>` and
    /// a configuration push).
    pub firmware: Option<String>,
    /// Desired configuration generation (implies `CONFIG_VERSION` and a
    /// generate + push).
    pub config: Option<String>,
    /// Plain database attribute assertions (no push needed).
    pub sets: Vec<(String, AttrValue)>,
    /// Tests to run inside the maintenance window.
    pub tests: Vec<TestKind>,
    /// Audit assertions (audit mode only).
    pub expects: Vec<Assertion>,
    /// Waypoint invariant to preserve during a wave rollout: inspected
    /// traffic must keep traversing a device matching this glob.
    pub waypoint: Option<String>,
}

impl Spec {
    /// An empty apply-mode spec over `scope` (used by tests and builders;
    /// parsed specs come from [`crate::parse_spec`]).
    pub fn new(name: impl Into<String>, scope: impl Into<String>) -> Spec {
        Spec {
            name: name.into(),
            scope: scope.into(),
            strategy: Strategy::Direct,
            mode: Mode::Apply,
            terminal: None,
            firmware: None,
            config: None,
            sets: Vec::new(),
            tests: Vec::new(),
            expects: Vec::new(),
            waypoint: None,
        }
    }

    /// True when the spec needs a configuration push (firmware or config
    /// generation targets).
    pub fn pushes(&self) -> bool {
        self.firmware.is_some() || self.config.is_some()
    }
}

/// A spec-layer error: template instantiation, parse, validation, or
/// compilation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecError {
    /// 1-based source line the error points at; 0 when it has no single
    /// line (semantic/validation errors).
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl SpecError {
    pub(crate) fn at(line: usize, msg: impl Into<String>) -> SpecError {
        SpecError {
            line,
            msg: msg.into(),
        }
    }

    pub(crate) fn general(msg: impl Into<String>) -> SpecError {
        SpecError {
            line: 0,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "spec line {}: {}", self.line, self.msg)
        } else {
            write!(f, "spec: {}", self.msg)
        }
    }
}

impl std::error::Error for SpecError {}
