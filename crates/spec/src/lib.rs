//! # occam-spec
//!
//! The declarative workflow layer (`DESIGN.md` §17): operators declare
//! *desired state* — a scope, target firmware/config, a terminal admin
//! status, tests, audit assertions — and a compiler owns the translation
//! into an executable program whose every abort prefix parses under the
//! Table 1 rollback grammar.
//!
//! The pipeline:
//!
//! ```text
//! template ──instantiate──▶ source ──parse──▶ Spec ──validate──▶ steps
//!                                                        │
//!                                              (semantic rules +
//!                                               abort-prefix parse
//!                                               against Table 1)
//!                                                        │
//!                                                     compile
//!                                                        ▼
//!                                        Program (direct / audit / waves)
//! ```
//!
//! Three realizations share one spec language: **direct** apply under
//! strict 2PL, read-only **audit** through the netdb incremental view
//! cache, and **waves** through the `occam-update` consistent-update
//! coordinator. The gateway catalog declares every standard workflow as
//! a spec template and calls [`template_program`] — this crate is the
//! only `Program` factory in the system.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod compile;
pub mod lower;
pub mod obs;
pub mod parse;
pub mod validate;

pub use ast::{Mode, Spec, SpecError, Strategy, Terminal, TestKind};
pub use compile::{compile, compile_source, template_program, Compiled, Program};
pub use lower::{lower, needs_offline, LoweredStep, CONFIG_VERSION};
pub use obs::SpecObs;
pub use parse::{instantiate, parse_spec};
pub use validate::validate;
