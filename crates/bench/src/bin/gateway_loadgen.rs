//! Load generator for the occam-gateway service frontend.
//!
//! Opens `clients` concurrent TCP connections and drives a mixed
//! management workload with Meta-shaped arrivals (the Poisson/log-normal
//! trace model from `occam-workload`, compressed onto a wall-clock
//! window). Writes `BENCH_gateway.json` with throughput, end-to-end
//! latency percentiles, and admission/loss accounting read back from the
//! shared observability registry.
//!
//! By default the gateway runs in-process on an ephemeral port — that
//! mode also *asserts* the service invariants: zero lost tasks (every
//! accepted ticket reaches a terminal phase) and a bounded worker count
//! (threads spawned == configured pool size, never one per task).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p occam-bench --bin gateway_loadgen \
//!     [clients] [tasks_per_client] [pool_size] [queue_cap] [window_ms]
//! # defaults: 32 8 8 48 1500; window_ms 0 = submit everything at once
//! # (a burst guaranteed to exercise Busy backpressure)
//!
//! cargo run --release -p occam-bench --bin gateway_loadgen shutdown [addr]
//! # sends one SHUTDOWN frame to a running gateway_serve
//! ```

use occam_gateway::{Engine, EngineConfig, GatewayClient, GatewayServer, SubmitReply, WirePhase};
use occam_workload::{synthesize, TraceConfig};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Hard budget for the whole run; exceeded only on a service hang.
const RUN_BUDGET: Duration = Duration::from_secs(120);

/// One planned submission: `(arrival offset, workflow, scope, urgent,
/// params)`.
type Submission = (Duration, &'static str, String, bool, Vec<(String, String)>);

/// One client's share of the workload.
struct ClientPlan {
    submissions: Vec<Submission>,
}

#[derive(Default)]
struct ClientTally {
    accepted: u64,
    busy_retries: u64,
    rejected: u64,
    completed: u64,
    aborted: u64,
    cancelled: u64,
    lost: u64,
}

fn build_plans(
    clients: usize,
    tasks_per_client: usize,
    k: u32,
    window: Duration,
) -> Vec<ClientPlan> {
    let total = clients * tasks_per_client;
    let trace = synthesize(&TraceConfig {
        num_tasks: total,
        ..TraceConfig::default()
    });
    let last_arrival = trace.last().map(|t| t.arrival).unwrap_or(1.0).max(1e-9);
    let mut plans: Vec<ClientPlan> = (0..clients)
        .map(|_| ClientPlan {
            submissions: Vec::with_capacity(tasks_per_client),
        })
        .collect();
    for spec in &trace {
        // Compress trace hours onto the wall-clock window, preserving the
        // Poisson arrival shape.
        let offset = window.mul_f64(spec.arrival / last_arrival);
        let pod = (spec.id % k as u64) as u32;
        let scope = format!("dc01.pod{pod:02}.*");
        let (workflow, params): (&'static str, Vec<(String, String)>) = if !spec.write {
            ("status_audit", vec![])
        } else {
            match spec.id % 3 {
                0 => (
                    "config_push",
                    vec![("generation".into(), format!("gen-{}", spec.id))],
                ),
                1 => (
                    "firmware_upgrade",
                    vec![("version".into(), format!("fw-2.{}", spec.id))],
                ),
                _ => ("device_maintenance", vec![]),
            }
        };
        plans[(spec.id as usize) % clients].submissions.push((
            offset,
            workflow,
            scope,
            spec.urgent,
            params,
        ));
    }
    plans
}

fn run_client(addr: &str, plan: ClientPlan, start: Instant) -> ClientTally {
    let mut tally = ClientTally::default();
    let mut client = GatewayClient::connect(addr).expect("connect to gateway");
    let mut tickets: Vec<u64> = Vec::with_capacity(plan.submissions.len());
    for (offset, workflow, scope, urgent, params) in plan.submissions {
        if let Some(gap) = offset.checked_sub(start.elapsed()) {
            std::thread::sleep(gap);
        }
        loop {
            match client
                .submit(workflow, &scope, urgent, &params)
                .expect("submit roundtrip")
            {
                SubmitReply::Accepted(t) => {
                    tally.accepted += 1;
                    tickets.push(t);
                    break;
                }
                SubmitReply::Busy(retry_after_ms) => {
                    // The admission contract: shed now, retry after the
                    // hint. The load generator honors it verbatim.
                    tally.busy_retries += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                SubmitReply::Rejected(code, msg) => {
                    eprintln!("rejected {workflow} on {scope}: {code:?} {msg}");
                    tally.rejected += 1;
                    break;
                }
            }
        }
    }
    // Poll every accepted ticket to a terminal phase.
    for ticket in tickets {
        loop {
            if start.elapsed() > RUN_BUDGET {
                tally.lost += 1;
                break;
            }
            let (phase, _detail) = client.status(ticket).expect("status roundtrip");
            match phase {
                WirePhase::Completed => {
                    tally.completed += 1;
                    break;
                }
                WirePhase::Aborted => {
                    tally.aborted += 1;
                    break;
                }
                WirePhase::Cancelled => {
                    tally.cancelled += 1;
                    break;
                }
                WirePhase::Unknown => {
                    tally.lost += 1;
                    break;
                }
                WirePhase::Queued | WirePhase::Running => {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
    }
    tally
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("shutdown") {
        let addr = args
            .get(1)
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7421".into());
        let mut client = GatewayClient::connect(&addr).expect("connect to gateway");
        client.shutdown().expect("shutdown roundtrip");
        println!("gateway at {addr} acknowledged shutdown");
        return;
    }
    let clients: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(32);
    let tasks_per_client: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let pool_size: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let queue_cap: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(48);
    let window = Duration::from_millis(args.get(4).and_then(|s| s.parse().ok()).unwrap_or(1500));
    let k: u32 = 6;

    let (runtime, _ft) = occam::emulated_deployment(1, k);
    let engine = Engine::new(
        runtime,
        EngineConfig {
            pool_size,
            queue_cap,
            ..EngineConfig::default()
        },
    );
    let mut server =
        GatewayServer::start(engine, "127.0.0.1:0").expect("bind ephemeral gateway port");
    let addr = server.local_addr().to_string();
    println!(
        "gateway on {addr}: {clients} clients x {tasks_per_client} tasks \
         (pool={pool_size}, queue_cap={queue_cap})"
    );

    let plans = build_plans(clients, tasks_per_client, k, window);
    let start = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|s| {
        let handles: Vec<_> = plans
            .into_iter()
            .map(|plan| {
                let addr = addr.clone();
                s.spawn(move || run_client(&addr, plan, start))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();

    let mut total = ClientTally::default();
    for t in &tallies {
        total.accepted += t.accepted;
        total.busy_retries += t.busy_retries;
        total.rejected += t.rejected;
        total.completed += t.completed;
        total.aborted += t.aborted;
        total.cancelled += t.cancelled;
        total.lost += t.lost;
    }
    let stats = server.engine().runtime().pool_stats();
    let reg = server.engine().runtime().obs().clone();
    server.shutdown();

    let submitted = (clients * tasks_per_client) as u64;
    let throughput = total.completed as f64 / wall.as_secs_f64();
    let e2e = reg.histogram_snapshot("gateway.e2e_ns");
    let queue_wait = reg.histogram_snapshot("gateway.queue_wait_ns");
    let pct = |snap: &Option<occam::obs::HistogramSnapshot>, q: f64| -> u64 {
        snap.as_ref().map(|s| s.quantile(q)).unwrap_or(0)
    };

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"clients\": {clients}, \"tasks_per_client\": {tasks_per_client}, \
         \"pool_size\": {pool_size}, \"queue_cap\": {queue_cap}, \"fat_tree_k\": {k}}},"
    );
    let _ = writeln!(
        json,
        "  \"totals\": {{\"submitted\": {submitted}, \"accepted\": {}, \"busy_retries\": {}, \
         \"rejected\": {}, \"completed\": {}, \"aborted\": {}, \"cancelled\": {}, \"lost\": {}}},",
        total.accepted,
        total.busy_retries,
        total.rejected,
        total.completed,
        total.aborted,
        total.cancelled,
        total.lost
    );
    let _ = writeln!(
        json,
        "  \"pool\": {{\"size\": {}, \"spawned\": {}, \"peak_active\": {}, \"executed\": {}}},",
        stats.size, stats.spawned, stats.peak_active, stats.executed
    );
    let _ = writeln!(
        json,
        "  \"wall_secs\": {:.3},\n  \"throughput_tasks_per_sec\": {:.1},",
        wall.as_secs_f64(),
        throughput
    );
    let _ = writeln!(
        json,
        "  \"e2e_ns\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"count\": {}}},",
        pct(&e2e, 0.50),
        pct(&e2e, 0.90),
        pct(&e2e, 0.99),
        e2e.as_ref().map(|s| s.count).unwrap_or(0)
    );
    let _ = writeln!(
        json,
        "  \"queue_wait_ns\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}},",
        pct(&queue_wait, 0.50),
        pct(&queue_wait, 0.90),
        pct(&queue_wait, 0.99)
    );
    let _ = writeln!(
        json,
        "  \"gateway_counters\": {{\"frames_rx\": {}, \"frames_tx\": {}, \"conn_opened\": {}, \
         \"conn_closed\": {}, \"proto_errors\": {}}}",
        reg.counter_value("gateway.frames.rx"),
        reg.counter_value("gateway.frames.tx"),
        reg.counter_value("gateway.conn.opened"),
        reg.counter_value("gateway.conn.closed"),
        reg.counter_value("gateway.proto.errors")
    );
    json.push_str("}\n");
    std::fs::write("BENCH_gateway.json", &json).expect("write BENCH_gateway.json");

    println!(
        "completed {}/{} ({} aborted, {} cancelled, {} busy retries) in {:.2}s — {:.1} tasks/s",
        total.completed,
        submitted,
        total.aborted,
        total.cancelled,
        total.busy_retries,
        wall.as_secs_f64(),
        throughput
    );
    println!(
        "e2e latency p50/p90/p99: {:.2}/{:.2}/{:.2} ms",
        pct(&e2e, 0.50) as f64 / 1e6,
        pct(&e2e, 0.90) as f64 / 1e6,
        pct(&e2e, 0.99) as f64 / 1e6
    );
    println!("wrote BENCH_gateway.json");

    // Service invariants (CI smoke relies on a nonzero exit here).
    assert_eq!(
        total.lost, 0,
        "lost tasks: accepted tickets never went terminal"
    );
    assert_eq!(
        total.rejected, 0,
        "unexpected typed rejections during steady state"
    );
    assert!(
        stats.spawned <= pool_size,
        "worker pool exceeded its bound: spawned {} > pool_size {pool_size}",
        stats.spawned
    );
    assert!(total.completed > 0, "no tasks completed");
}
