//! Load generator for the occam-gateway service frontend.
//!
//! Runs two phases and publishes both in `BENCH_gateway.json`:
//!
//! 1. **arrival** — `clients` concurrent connections driving a mixed
//!    management workload with Meta-shaped arrivals (the Poisson/
//!    log-normal trace model from `occam-workload`, compressed onto a
//!    wall-clock window). This is the latency-under-realistic-load
//!    phase; throughput is arrival-limited by construction.
//! 2. **burst** — ≥1024 concurrent connections submitting pipelined
//!    batches of read-only workflows as fast as the gateway admits
//!    them. This is the serving-throughput phase: it measures how many
//!    tasks/s the reactor + batch admission + worker pool sustain, and
//!    it is the number the CI gate holds (the seed thread-per-connection
//!    server topped out at ~1.1k tasks/s here).
//!
//! Both phases run the gateway in-process on an ephemeral port and
//! *assert* the service invariants: zero lost tasks (every accepted
//! ticket reaches a terminal phase), zero protocol errors, and a
//! bounded worker count (threads spawned ≤ configured pool size, never
//! one per task or per connection).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p occam-bench --bin gateway_loadgen \
//!     [clients] [tasks_per_client] [pool_size] [queue_cap] [window_ms]
//! # defaults: 32 8 8 48 1500; window_ms 0 = submit everything at once
//!
//! cargo run --release -p occam-bench --bin gateway_loadgen --smoke
//! # CI mode: smaller burst, hard gate at ≥5x the seed burst throughput
//!
//! cargo run --release -p occam-bench --bin gateway_loadgen shutdown [addr]
//! # sends one SHUTDOWN frame to a running gateway_serve
//! ```

use occam_gateway::{
    Engine, EngineConfig, GatewayClient, GatewayServer, SubmitReply, SubmitSpec, WirePhase,
};
use occam_workload::{synthesize, TraceConfig};
use std::fmt::Write as _;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Hard budget for one phase; exceeded only on a service hang.
const RUN_BUDGET: Duration = Duration::from_secs(120);

/// Burst-phase connection count (the acceptance floor is 1024).
const BURST_CONNS: usize = 1024;
/// Pipelined SUBMITs per wire batch in the burst phase.
const BURST_BATCH: usize = 32;
/// Seed burst throughput (thread-per-connection server) — the CI smoke
/// gate requires ≥5x this.
const SEED_BURST_TASKS_PER_SEC: f64 = 1110.0;

/// One planned submission: `(arrival offset, workflow, scope, urgent,
/// params)`.
type Submission = (Duration, &'static str, String, bool, Vec<(String, String)>);

/// One client's share of the workload.
struct ClientPlan {
    submissions: Vec<Submission>,
}

#[derive(Default)]
struct ClientTally {
    accepted: u64,
    busy_retries: u64,
    rejected: u64,
    completed: u64,
    aborted: u64,
    cancelled: u64,
    lost: u64,
}

fn build_plans(
    clients: usize,
    tasks_per_client: usize,
    k: u32,
    window: Duration,
) -> Vec<ClientPlan> {
    let total = clients * tasks_per_client;
    let trace = synthesize(&TraceConfig {
        num_tasks: total,
        ..TraceConfig::default()
    });
    let last_arrival = trace.last().map(|t| t.arrival).unwrap_or(1.0).max(1e-9);
    let mut plans: Vec<ClientPlan> = (0..clients)
        .map(|_| ClientPlan {
            submissions: Vec::with_capacity(tasks_per_client),
        })
        .collect();
    for spec in &trace {
        // Compress trace hours onto the wall-clock window, preserving the
        // Poisson arrival shape.
        let offset = window.mul_f64(spec.arrival / last_arrival);
        let pod = (spec.id % k as u64) as u32;
        let scope = format!("dc01.pod{pod:02}.*");
        let (workflow, params): (&'static str, Vec<(String, String)>) = if !spec.write {
            ("status_audit", vec![])
        } else {
            match spec.id % 3 {
                0 => (
                    "config_push",
                    vec![("generation".into(), format!("gen-{}", spec.id))],
                ),
                1 => (
                    "firmware_upgrade",
                    vec![("version".into(), format!("fw-2.{}", spec.id))],
                ),
                _ => ("device_maintenance", vec![]),
            }
        };
        plans[(spec.id as usize) % clients].submissions.push((
            offset,
            workflow,
            scope,
            spec.urgent,
            params,
        ));
    }
    plans
}

fn run_client(addr: &str, plan: ClientPlan, start: Instant) -> ClientTally {
    let mut tally = ClientTally::default();
    let mut client = GatewayClient::connect(addr).expect("connect to gateway");
    let mut tickets: Vec<u64> = Vec::with_capacity(plan.submissions.len());
    for (offset, workflow, scope, urgent, params) in plan.submissions {
        if let Some(gap) = offset.checked_sub(start.elapsed()) {
            std::thread::sleep(gap);
        }
        loop {
            match client
                .submit(workflow, &scope, urgent, &params)
                .expect("submit roundtrip")
            {
                SubmitReply::Accepted(t) => {
                    tally.accepted += 1;
                    tickets.push(t);
                    break;
                }
                SubmitReply::Busy(retry_after_ms) => {
                    // The admission contract: shed now, retry after the
                    // hint. The load generator honors it verbatim.
                    tally.busy_retries += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                SubmitReply::Rejected(code, msg) => {
                    eprintln!("rejected {workflow} on {scope}: {code:?} {msg}");
                    tally.rejected += 1;
                    break;
                }
            }
        }
    }
    // Poll every accepted ticket to a terminal phase.
    for ticket in tickets {
        loop {
            if start.elapsed() > RUN_BUDGET {
                tally.lost += 1;
                break;
            }
            let (phase, _detail) = client.status(ticket).expect("status roundtrip");
            match phase {
                WirePhase::Completed => {
                    tally.completed += 1;
                    break;
                }
                WirePhase::Aborted => {
                    tally.aborted += 1;
                    break;
                }
                WirePhase::Cancelled => {
                    tally.cancelled += 1;
                    break;
                }
                WirePhase::Unknown => {
                    tally.lost += 1;
                    break;
                }
                WirePhase::Queued | WirePhase::Running => {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
    }
    tally
}

/// Arrival-phase results, pre-rendered as the `"arrival"` JSON object.
struct ArrivalResult {
    json: String,
    summary: String,
}

#[allow(clippy::too_many_arguments)]
fn arrival_phase(
    clients: usize,
    tasks_per_client: usize,
    pool_size: usize,
    queue_cap: usize,
    window: Duration,
    k: u32,
) -> ArrivalResult {
    let (runtime, _ft) = occam::emulated_deployment(1, k);
    let engine = Engine::new(
        runtime,
        EngineConfig {
            pool_size,
            queue_cap,
            ..EngineConfig::default()
        },
    );
    let mut server =
        GatewayServer::start(engine, "127.0.0.1:0").expect("bind ephemeral gateway port");
    let addr = server.local_addr().to_string();
    println!(
        "[arrival] gateway on {addr}: {clients} clients x {tasks_per_client} tasks \
         (pool={pool_size}, queue_cap={queue_cap})"
    );

    let plans = build_plans(clients, tasks_per_client, k, window);
    let start = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|s| {
        let handles: Vec<_> = plans
            .into_iter()
            .map(|plan| {
                let addr = addr.clone();
                s.spawn(move || run_client(&addr, plan, start))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();

    let mut total = ClientTally::default();
    for t in &tallies {
        total.accepted += t.accepted;
        total.busy_retries += t.busy_retries;
        total.rejected += t.rejected;
        total.completed += t.completed;
        total.aborted += t.aborted;
        total.cancelled += t.cancelled;
        total.lost += t.lost;
    }
    let stats = server.engine().runtime().pool_stats();
    let reg = server.engine().runtime().obs().clone();
    server.shutdown();

    let submitted = (clients * tasks_per_client) as u64;
    let throughput = total.completed as f64 / wall.as_secs_f64();
    let e2e = reg.histogram_snapshot("gateway.e2e_ns");
    let queue_wait = reg.histogram_snapshot("gateway.queue_wait_ns");
    let pct = |snap: &Option<occam::obs::HistogramSnapshot>, q: f64| -> u64 {
        snap.as_ref().map(|s| s.quantile(q)).unwrap_or(0)
    };

    let mut json = String::from("  \"arrival\": {\n");
    let _ = writeln!(
        json,
        "    \"config\": {{\"clients\": {clients}, \"tasks_per_client\": {tasks_per_client}, \
         \"pool_size\": {pool_size}, \"queue_cap\": {queue_cap}, \"fat_tree_k\": {k}}},"
    );
    let _ = writeln!(
        json,
        "    \"totals\": {{\"submitted\": {submitted}, \"accepted\": {}, \"busy_retries\": {}, \
         \"rejected\": {}, \"completed\": {}, \"aborted\": {}, \"cancelled\": {}, \"lost\": {}}},",
        total.accepted,
        total.busy_retries,
        total.rejected,
        total.completed,
        total.aborted,
        total.cancelled,
        total.lost
    );
    let _ = writeln!(
        json,
        "    \"pool\": {{\"size\": {}, \"spawned\": {}, \"peak_active\": {}, \"executed\": {}}},",
        stats.size, stats.spawned, stats.peak_active, stats.executed
    );
    let _ = writeln!(
        json,
        "    \"wall_secs\": {:.3},\n    \"throughput_tasks_per_sec\": {:.1},",
        wall.as_secs_f64(),
        throughput
    );
    let _ = writeln!(
        json,
        "    \"e2e_ns\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"count\": {}}},",
        pct(&e2e, 0.50),
        pct(&e2e, 0.90),
        pct(&e2e, 0.99),
        e2e.as_ref().map(|s| s.count).unwrap_or(0)
    );
    let _ = writeln!(
        json,
        "    \"queue_wait_ns\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}},",
        pct(&queue_wait, 0.50),
        pct(&queue_wait, 0.90),
        pct(&queue_wait, 0.99)
    );
    let _ = writeln!(
        json,
        "    \"gateway_counters\": {{\"frames_rx\": {}, \"frames_tx\": {}, \"conn_opened\": {}, \
         \"conn_closed\": {}, \"proto_errors\": {}}}",
        reg.counter_value("gateway.frames.rx"),
        reg.counter_value("gateway.frames.tx"),
        reg.counter_value("gateway.conn.opened"),
        reg.counter_value("gateway.conn.closed"),
        reg.counter_value("gateway.proto.errors")
    );
    json.push_str("  }");

    let summary = format!(
        "[arrival] completed {}/{} ({} aborted, {} cancelled, {} busy retries) in {:.2}s — \
         {:.1} tasks/s; e2e p50/p90/p99 {:.2}/{:.2}/{:.2} ms",
        total.completed,
        submitted,
        total.aborted,
        total.cancelled,
        total.busy_retries,
        wall.as_secs_f64(),
        throughput,
        pct(&e2e, 0.50) as f64 / 1e6,
        pct(&e2e, 0.90) as f64 / 1e6,
        pct(&e2e, 0.99) as f64 / 1e6
    );
    println!("{summary}");

    // Service invariants (CI smoke relies on a nonzero exit here).
    assert_eq!(
        total.lost, 0,
        "[arrival] lost tasks: accepted tickets never went terminal"
    );
    assert_eq!(
        total.rejected, 0,
        "[arrival] unexpected typed rejections during steady state"
    );
    assert!(
        stats.spawned <= pool_size,
        "[arrival] worker pool exceeded its bound: spawned {} > pool_size {pool_size}",
        stats.spawned
    );
    assert!(total.completed > 0, "[arrival] no tasks completed");
    assert_eq!(
        reg.counter_value("gateway.proto.errors"),
        0,
        "[arrival] protocol errors"
    );

    ArrivalResult { json, summary }
}

/// Burst-phase results, pre-rendered as the `"burst"` JSON object.
struct BurstResult {
    json: String,
    tasks_per_sec: f64,
    lost: u64,
    proto_errors: u64,
}

/// Serving-throughput phase: `conns` connections submit `per_conn`
/// read-only workflows each, in pipelined batches of [`BURST_BATCH`],
/// as fast as admission allows. A handful of driver threads multiplex
/// the connections (the gateway must cope with 1024 sockets; the load
/// generator does not need 1024 threads to saturate it). The clock
/// runs from the post-connect barrier until every admitted task is
/// terminal, so the number is end-to-end serving throughput, not just
/// admission rate.
fn burst_phase(conns: usize, per_conn: usize, pool_size: usize, queue_cap: usize) -> BurstResult {
    let k: u32 = 6;
    let total = conns * per_conn;
    let (runtime, _ft) = occam::emulated_deployment(1, k);
    let engine = Engine::new(
        runtime,
        EngineConfig {
            pool_size,
            queue_cap,
            // Keep every burst record resident so the lost-ticket audit
            // below can see all of them.
            terminal_retain: total + 1024,
            ..EngineConfig::default()
        },
    );
    let mut server =
        GatewayServer::start(engine, "127.0.0.1:0").expect("bind ephemeral gateway port");
    let addr = server.local_addr().to_string();
    let engine = server.engine().clone();
    let shards = engine.shards();
    println!(
        "[burst] gateway on {addr}: {conns} conns x {per_conn} tasks, batch={BURST_BATCH} \
         (pool={pool_size}, queue_cap={queue_cap}, shards={shards})"
    );

    let drivers = conns.clamp(1, 8);
    let per_driver = conns.div_ceil(drivers);
    let barrier = Barrier::new(drivers + 1);
    let (tickets, busy_retries, wall) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..drivers)
            .map(|d| {
                let addr = &addr;
                let barrier = &barrier;
                let my_conns = per_driver.min(conns - (d * per_driver).min(conns));
                s.spawn(move || {
                    let mut clients: Vec<GatewayClient> = (0..my_conns)
                        .map(|_| GatewayClient::connect(addr).expect("connect to gateway"))
                        .collect();
                    let mut remaining: Vec<usize> = vec![per_conn; my_conns];
                    barrier.wait();
                    let mut tickets: Vec<u64> = Vec::with_capacity(my_conns * per_conn);
                    let mut busy_retries = 0u64;
                    let started = Instant::now();
                    while remaining.iter().any(|&r| r > 0) {
                        assert!(started.elapsed() < RUN_BUDGET, "[burst] submission hang");
                        let mut progressed = false;
                        for (ci, client) in clients.iter_mut().enumerate() {
                            if remaining[ci] == 0 {
                                continue;
                            }
                            let n = remaining[ci].min(BURST_BATCH);
                            let specs: Vec<SubmitSpec> = (0..n)
                                .map(|j| SubmitSpec {
                                    workflow: "status_audit".into(),
                                    scope: format!("dc01.pod{:02}.*", (ci + j) % k as usize),
                                    urgent: false,
                                    params: vec![],
                                })
                                .collect();
                            for reply in client.submit_batch(&specs).expect("pipelined submit") {
                                match reply {
                                    SubmitReply::Accepted(t) => {
                                        tickets.push(t);
                                        remaining[ci] -= 1;
                                        progressed = true;
                                    }
                                    SubmitReply::Busy(_) => busy_retries += 1,
                                    SubmitReply::Rejected(code, msg) => {
                                        panic!("[burst] rejected: {code:?} {msg}")
                                    }
                                }
                            }
                        }
                        if !progressed {
                            // Whole sweep shed: honor the backoff hint.
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                    (tickets, busy_retries)
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let mut tickets: Vec<u64> = Vec::with_capacity(total);
        let mut busy_retries = 0u64;
        for h in handles {
            let (t, b) = h.join().unwrap();
            tickets.extend_from_slice(&t);
            busy_retries += b;
        }
        // All submissions admitted; now wait for the pool to drain them.
        while !(engine.queued() == 0 && engine.all_terminal()) {
            assert!(start.elapsed() < RUN_BUDGET, "[burst] drain hang");
            std::thread::sleep(Duration::from_millis(1));
        }
        (tickets, busy_retries, start.elapsed())
    });

    // Lost-ticket audit: every admitted ticket must be terminal now.
    let mut lost = 0u64;
    for &t in &tickets {
        if !engine.status(t).0.is_terminal() {
            lost += 1;
        }
    }
    let accepted = tickets.len() as u64;
    let stats = engine.runtime().pool_stats();
    let reg = engine.runtime().obs().clone();
    server.shutdown();

    let tasks_per_sec = accepted as f64 / wall.as_secs_f64();
    let proto_errors = reg.counter_value("gateway.proto.errors");
    let e2e = reg.histogram_snapshot("gateway.e2e_ns");
    let batch_len = reg.histogram_snapshot("gateway.reactor.batch_len");
    let pct = |snap: &Option<occam::obs::HistogramSnapshot>, q: f64| -> u64 {
        snap.as_ref().map(|s| s.quantile(q)).unwrap_or(0)
    };

    let mut json = String::from("  \"burst\": {\n");
    let _ = writeln!(
        json,
        "    \"conns\": {conns},\n    \"tasks_per_conn\": {per_conn},\n    \
         \"pipeline_batch\": {BURST_BATCH},\n    \"pool_size\": {pool_size},\n    \
         \"queue_cap\": {queue_cap},\n    \"shards\": {shards},"
    );
    let _ = writeln!(
        json,
        "    \"submitted\": {total},\n    \"accepted\": {accepted},\n    \
         \"busy_retries\": {busy_retries},\n    \"lost\": {lost},\n    \
         \"proto_errors\": {proto_errors},"
    );
    let _ = writeln!(
        json,
        "    \"wall_secs\": {:.3},\n    \"tasks_per_sec\": {:.1},",
        wall.as_secs_f64(),
        tasks_per_sec
    );
    let _ = writeln!(
        json,
        "    \"e2e_ns\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"count\": {}}},",
        pct(&e2e, 0.50),
        pct(&e2e, 0.90),
        pct(&e2e, 0.99),
        e2e.as_ref().map(|s| s.count).unwrap_or(0)
    );
    let _ = writeln!(
        json,
        "    \"reactor\": {{\"events\": {}, \"wouldblock\": {}, \"batch_len_p50\": {}, \
         \"batch_len_p99\": {}}},",
        reg.counter_value("gateway.reactor.events"),
        reg.counter_value("gateway.reactor.wouldblock"),
        pct(&batch_len, 0.50),
        pct(&batch_len, 0.99)
    );
    let _ = writeln!(
        json,
        "    \"pool\": {{\"size\": {}, \"spawned\": {}, \"peak_active\": {}, \"executed\": {}}},",
        stats.size, stats.spawned, stats.peak_active, stats.executed
    );
    let _ = writeln!(
        json,
        "    \"gateway_counters\": {{\"frames_rx\": {}, \"frames_tx\": {}, \"conn_opened\": {}, \
         \"conn_closed\": {}}}",
        reg.counter_value("gateway.frames.rx"),
        reg.counter_value("gateway.frames.tx"),
        reg.counter_value("gateway.conn.opened"),
        reg.counter_value("gateway.conn.closed")
    );
    json.push_str("  }");

    println!(
        "[burst] {accepted}/{total} tasks over {conns} conns in {:.2}s — {:.0} tasks/s \
         ({busy_retries} busy retries, {lost} lost, {proto_errors} proto errors); \
         e2e p99 {:.2} ms",
        wall.as_secs_f64(),
        tasks_per_sec,
        pct(&e2e, 0.99) as f64 / 1e6
    );

    assert_eq!(
        reg.counter_value("gateway.conn.opened"),
        reg.counter_value("gateway.conn.closed"),
        "[burst] connection leak"
    );
    assert!(
        stats.spawned <= pool_size,
        "[burst] worker pool exceeded its bound: spawned {} > pool_size {pool_size}",
        stats.spawned
    );

    BurstResult {
        json,
        tasks_per_sec,
        lost,
        proto_errors,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("shutdown") {
        let addr = args
            .get(1)
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7421".into());
        let mut client = GatewayClient::connect(&addr).expect("connect to gateway");
        client.shutdown().expect("shutdown roundtrip");
        println!("gateway at {addr} acknowledged shutdown");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");

    // Smoke defaults keep the arrival phase CI-sized; the burst phase
    // always runs at full connection count (that is the contract under
    // test) but with a shorter pipeline per connection.
    let (d_clients, d_tasks, d_pool, d_queue, d_window) = if smoke {
        (8, 4, 4, 16, 200)
    } else {
        (32, 8, 8, 48, 1500)
    };
    let clients: usize = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(d_clients);
    let tasks_per_client: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(d_tasks);
    let pool_size: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(d_pool);
    let queue_cap: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(d_queue);
    let window =
        Duration::from_millis(args.get(4).and_then(|s| s.parse().ok()).unwrap_or(d_window));

    let arrival = arrival_phase(clients, tasks_per_client, pool_size, queue_cap, window, 6);
    let burst_per_conn = if smoke { 8 } else { 32 };
    let burst = burst_phase(BURST_CONNS, burst_per_conn, 2, 16_384);

    let mut json = String::from("{\n");
    json.push_str(&arrival.json);
    json.push_str(",\n");
    json.push_str(&burst.json);
    json.push_str("\n}\n");
    std::fs::write("BENCH_gateway.json", &json).expect("write BENCH_gateway.json");
    println!("wrote BENCH_gateway.json");
    println!("{}", arrival.summary);

    assert_eq!(burst.lost, 0, "[burst] lost tasks");
    assert_eq!(burst.proto_errors, 0, "[burst] protocol errors");
    let floor = if smoke {
        5.0 * SEED_BURST_TASKS_PER_SEC
    } else {
        10_000.0
    };
    assert!(
        burst.tasks_per_sec >= floor,
        "[burst] throughput gate: {:.1} tasks/s < floor {floor:.1}",
        burst.tasks_per_sec
    );
}
