//! Incremental-vs-cold compliance audit benchmark at production
//! simulation scale, written to `BENCH_spec.json`.
//!
//! The paper's continuous-audit loop re-evaluates declarative spec
//! assertions over the whole fleet after every commit. A from-scratch
//! scan is O(fleet); the netdb view cache (DESIGN.md §17.3) memoizes
//! per-shard partials keyed by shard `Arc` identity, so a re-audit after
//! a commit recomputes only the shards the commit dirtied. This bench
//! measures exactly that regime:
//!
//! - The fleet is the paper's production scale — 16 DCs × 96 pods × 92
//!   switches ≈ 141k devices — spread over the store's 128 data shards.
//! - The audited view comes from a compiled **audit spec** (status +
//!   firmware assertions over `*`), the same path `status_audit` /
//!   `compliance_audit` gateway workflows take.
//! - Each measured round commits a maintenance batch confined to a fixed
//!   handful of `(dc, pod)` prefixes (≤ 8 dirty shards of 128), then
//!   times the incremental refresh against a cold full scan **at the
//!   same snapshot** and asserts the two reports identical.
//!
//! Hard gates (process exits non-zero): incremental re-audit ≥ 10×
//! faster than the cold scan, every round recomputes ≤ the dirtied
//! shard bound, and incremental == cold on every round.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p occam-bench --bin spec_bench
//! # full scale: 16 dc × 96 pods, 8 dirty pods, 30 rounds
//!
//! cargo run --release -p occam-bench --bin spec_bench -- --smoke
//! # CI smoke: 4 dc × 24 pods, 2 dirty pods, 10 rounds, same gates
//! ```

use occam::netdb::{attrs, compliance_cold, Database, WriteOp};
use occam::obs::Registry;
use occam::regex::Pattern;
use occam::spec::compile_source;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Switches per pod (the paper's ~92-switch pod: 80 ToR + 8 agg + 4
/// spine-facing).
const POD_SWITCHES: u32 = 92;

struct Shape {
    dcs: u32,
    pods: u32,
    dirty_pods: usize,
    rounds: u32,
}

/// The audited view: the same declarative audit spec the gateway's
/// compliance workflows compile, over the whole fleet.
const AUDIT_SPEC: &str = "spec fleet_audit {\n\
                          \x20 scope *\n\
                          \x20 audit\n\
                          \x20 expect status active\n\
                          \x20 expect FIRMWARE_VERSION = fw-1.0.0\n\
                          }\n";

fn populate(db: &Database, shape: &Shape) -> u64 {
    let mut devices = 0u64;
    for dc in 1..=shape.dcs {
        for pod in 0..shape.pods {
            let batch: Vec<WriteOp> = (0..POD_SWITCHES)
                .map(|sw| WriteOp::InsertDevice {
                    name: format!("dc{dc:02}.pod{pod:02}.sw{sw:02}"),
                    attrs: vec![
                        (attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into()),
                        (attrs::FIRMWARE_VERSION.into(), "fw-1.0.0".into()),
                    ],
                })
                .collect();
            devices += batch.len() as u64;
            db.batch(&batch).expect("seed batch");
        }
    }
    devices
}

/// One maintenance round's writes: flip a few switches per dirty pod
/// between drained and active, confined to `dirty_pods` fixed `(dc,
/// pod)` prefixes.
fn dirty_batch(shape: &Shape, round: u32) -> Vec<WriteOp> {
    let status = if round.is_multiple_of(2) {
        attrs::STATUS_DRAINED
    } else {
        attrs::STATUS_ACTIVE
    };
    (0..shape.dirty_pods)
        .flat_map(|p| {
            let dc = (p as u32 % shape.dcs) + 1;
            let pod = p as u32 % shape.pods;
            (0..4).map(move |sw| WriteOp::SetDeviceAttr {
                name: format!("dc{dc:02}.pod{pod:02}.sw{sw:02}"),
                attr: attrs::DEVICE_STATUS.into(),
                value: status.into(),
            })
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shape = if smoke {
        Shape {
            dcs: 4,
            pods: 24,
            dirty_pods: 2,
            rounds: 10,
        }
    } else {
        Shape {
            dcs: 16,
            pods: 96,
            dirty_pods: 8,
            rounds: 30,
        }
    };

    let reg = Registry::new();
    let db = Database::with_obs(&reg);
    let devices = populate(&db, &shape);
    eprintln!(
        "populated {} devices ({} dc x {} pods x {} switches)",
        devices, shape.dcs, shape.pods, POD_SWITCHES
    );

    let compiled = compile_source(AUDIT_SPEC).expect("audit spec compiles");
    let expects = compiled.spec().expects.clone();
    let scope = Pattern::from_glob(&compiled.spec().scope).expect("scope glob");

    // Warm the view: the first refresh is the cold scan that seeds every
    // shard partial.
    let warm_started = Instant::now();
    let warm = db.views().refresh(&db.snapshot(), &scope, &expects);
    let warm_elapsed = warm_started.elapsed();
    assert_eq!(warm.devices, devices, "audit must see the whole fleet");

    let mut incr_total = Duration::ZERO;
    let mut cold_total = Duration::ZERO;
    let mut max_recomputed = 0u64;
    let mut failed = false;
    for round in 0..shape.rounds {
        db.batch(&dirty_batch(&shape, round)).expect("dirty batch");
        let snap = db.snapshot();

        let started = Instant::now();
        let incr = db.views().refresh(&snap, &scope, &expects);
        incr_total += started.elapsed();

        let started = Instant::now();
        let cold = compliance_cold(&snap, &scope, &expects);
        cold_total += started.elapsed();

        if !incr.same_result(&cold) {
            eprintln!(
                "FAIL: round {round}: incremental {} != cold {}",
                incr.summary(5),
                cold.summary(5)
            );
            failed = true;
        }
        max_recomputed = max_recomputed.max(incr.recomputed_shards);
        if incr.recomputed_shards > shape.dirty_pods as u64 {
            eprintln!(
                "FAIL: round {round}: {} shards recomputed for {} dirty pods",
                incr.recomputed_shards, shape.dirty_pods
            );
            failed = true;
        }
    }

    let speedup = cold_total.as_secs_f64() / incr_total.as_secs_f64();
    let incr_us = incr_total.as_secs_f64() * 1e6 / f64::from(shape.rounds);
    let cold_us = cold_total.as_secs_f64() * 1e6 / f64::from(shape.rounds);
    eprintln!(
        "cold {:.0}us/round, incremental {:.0}us/round ({speedup:.1}x), \
         <= {max_recomputed} shards recomputed per round",
        cold_us, incr_us
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"spec_bench\",\"smoke\":{smoke},\"devices\":{devices},\
         \"dirty_pods\":{},\"rounds\":{},\"warm_scan_us\":{:.0},\
         \"cold_us_per_round\":{cold_us:.0},\"incremental_us_per_round\":{incr_us:.0},\
         \"speedup\":{speedup:.2},\"max_recomputed_shards\":{max_recomputed},\
         \"view_refreshes\":{},\"view_shard_hits\":{},\"view_dirty_shards\":{}}}",
        shape.dirty_pods,
        shape.rounds,
        warm_elapsed.as_secs_f64() * 1e6,
        reg.counter_value("netdb.view.refreshes"),
        reg.counter_value("netdb.view.hits"),
        reg.counter_value("netdb.view.dirty_shards"),
    );
    std::fs::write("BENCH_spec.json", &json).expect("write BENCH_spec.json");
    println!("wrote BENCH_spec.json");

    if speedup < 10.0 {
        eprintln!("FAIL: incremental re-audit speedup {speedup:.2}x < 10x over cold scan");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "gates passed: {speedup:.1}x incremental speedup over {devices} devices, \
         incremental == cold on every round"
    );
}
