//! Seeded chaos-campaign sweep for the recovery evaluation.
//!
//! Runs N seeded fault campaigns (see `occam-chaos`) across a fault-rate
//! sweep, re-runs the first campaign to check the byte-identical
//! determinism contract, and writes `BENCH_chaos.json` with per-campaign
//! counters: tasks attempted, completed, rolled back, retries, injected
//! faults per layer, crash points, and invariant violations (which a
//! healthy stack keeps at zero across the whole sweep — the process
//! exits non-zero otherwise).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p occam-bench --bin chaos_campaign [tasks]
//! # full sweep: seeds {11, 42, 1234} x rates {0, 0.05, 0.10, 0.15, 0.20}
//! # default 60 tasks per campaign
//!
//! cargo run --release -p occam-bench --bin chaos_campaign --smoke
//! # CI smoke: one campaign, seed 42, fault rate 10%, 100 tasks,
//! # gateway, replication, consistent-update, and OCC phases included
//! ```

use occam_chaos::{
    Campaign, CampaignConfig, CampaignReport, GatewayChaosConfig, OccChaosConfig, ReplChaosConfig,
    UpdateChaosConfig,
};
use std::fmt::Write as _;

const SWEEP_SEEDS: [u64; 3] = [11, 42, 1234];
const SWEEP_RATES: [f64; 5] = [0.0, 0.05, 0.10, 0.15, 0.20];

fn run_campaign(seed: u64, rate: f64, tasks: u32, gateway: bool) -> CampaignReport {
    let mut cfg = CampaignConfig::at_rate(seed, rate);
    cfg.tasks = tasks;
    if gateway {
        cfg.gateway = Some(GatewayChaosConfig::default());
        // The replication and update phases ride along with the gateway
        // phase: all are fault-rate independent (the update phase injects
        // its own device faults), so once per seed is representative.
        cfg.repl = Some(ReplChaosConfig::default());
        cfg.update = Some(UpdateChaosConfig::default());
        cfg.occ = Some(OccChaosConfig::default());
    }
    let report = Campaign::new(cfg).run();
    eprintln!(
        "seed {seed:>5} rate {rate:.2}: {} tasks, {} completed, {} rolled back, \
         {} retries, {} violations",
        report.tasks,
        report.completed,
        report.rolled_back,
        report.retries,
        report.invariant_violations
    );
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let tasks: u32 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|a| a.parse().expect("tasks must be a number"))
        .unwrap_or(if smoke { 100 } else { 60 });

    let mut campaigns: Vec<CampaignReport> = Vec::new();
    if smoke {
        // The gateway connection-chaos phase rides along on the smoke
        // campaign, so CI covers every fault layer in one run.
        campaigns.push(run_campaign(42, 0.10, tasks, true));
    } else {
        for &seed in &SWEEP_SEEDS {
            for &rate in &SWEEP_RATES {
                // Attach the gateway phase once per seed (at the 10% rate);
                // it is fault-rate independent, so once is representative.
                let gateway = (rate - 0.10).abs() < f64::EPSILON;
                campaigns.push(run_campaign(seed, rate, tasks, gateway));
            }
        }
    }

    // Determinism contract: the first campaign, re-run with an identical
    // config, must serialize byte-identically.
    let first = &campaigns[0];
    let rerun = run_campaign(first.seed, first.fault_rate, tasks, first.gateway.is_some());
    let determinism_ok = rerun.to_json() == first.to_json();

    let total_violations: u64 = campaigns.iter().map(|c| c.invariant_violations).sum();
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"chaos_campaign\",\"smoke\":{smoke},\"tasks_per_campaign\":{tasks},\
         \"campaigns\":["
    );
    for (i, c) in campaigns.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&c.to_json());
    }
    let _ = write!(
        json,
        "],\"determinism_ok\":{determinism_ok},\"total_violations\":{total_violations}}}"
    );
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("wrote BENCH_chaos.json ({} campaigns)", campaigns.len());

    if !determinism_ok {
        eprintln!("FAIL: identical configs produced different reports");
        std::process::exit(1);
    }
    if total_violations > 0 {
        let first_bad = campaigns
            .iter()
            .find(|c| c.invariant_violations > 0)
            .and_then(|c| c.first_violation.clone())
            .unwrap_or_default();
        eprintln!("FAIL: {total_violations} invariant violations ({first_bad})");
        std::process::exit(1);
    }
    println!("sweep clean: zero invariant violations, determinism holds");
}
