//! Figure 1: statistics of the production workflow system.
//!
//! Generates a synthetic month shaped like the Meta dataset and measures
//! the same six statistics the paper reports: workflow execution frequency
//! (1a), execution-time CDF (1b), building blocks per workflow (1c), BB
//! reuse (1d), overlapping instance pairs per day (1e), and devices per
//! workflow (1f).

use occam_workload::{generate_meta_stats, MetaStats, MetaStatsConfig};

fn main() {
    let cfg = MetaStatsConfig::default();
    let s = generate_meta_stats(&cfg);

    println!("## Figure 1a: top-20 workflow execution counts (month)");
    println!("rank\truns");
    for (i, c) in s.exec_counts.iter().take(20).enumerate() {
        println!("{}\t{}", i + 1, c);
    }
    let executed = s.exec_counts.iter().filter(|&&c| c > 0).count();
    let over_1000 = s.exec_counts.iter().filter(|&&c| c > 1000).count();
    println!(
        "# executed at least once: {executed}/{} (paper: ~50%)",
        cfg.num_workflows
    );
    println!("# workflows > 1000 runs: {over_1000} (paper: ~10)");
    println!("# top workflow runs: {} (paper: ~15000)", s.exec_counts[0]);

    println!();
    println!("## Figure 1b: execution-time CDF (hours)");
    println!("hours\tfraction");
    for (v, q) in MetaStats::cdf(&s.exec_times, 20) {
        println!("{v:.2}\t{q:.2}");
    }
    println!(
        "# P(>1h) = {:.2} (paper: >0.5), P(>100h) = {:.2} (paper: ~0.2)",
        MetaStats::fraction_above(&s.exec_times, 1.0),
        MetaStats::fraction_above(&s.exec_times, 100.0)
    );

    println!();
    println!("## Figure 1c: number of BBs per workflow (histogram)");
    println!("bbs\tworkflows");
    let max_bbs = s.bbs_per_workflow.iter().copied().max().unwrap_or(0);
    for n in 1..=max_bbs {
        let count = s.bbs_per_workflow.iter().filter(|&&b| b == n).count();
        if count > 0 {
            println!("{n}\t{count}");
        }
    }

    println!();
    println!("## Figure 1d: BB reuse (workflows using each BB, top 20)");
    println!("bb_rank\tworkflows_using");
    for (i, r) in s.bb_reuse.iter().take(20).enumerate() {
        println!("{}\t{}", i + 1, r);
    }

    println!();
    println!("## Figure 1e: overlapping workflow-instance pairs per day");
    println!("day\tpairs");
    for (d, p) in s.overlap_pairs_per_day.iter().enumerate() {
        println!("{}\t{}", d + 1, p);
    }
    let mean =
        s.overlap_pairs_per_day.iter().sum::<u64>() as f64 / s.overlap_pairs_per_day.len() as f64;
    println!("# mean pairs/day: {mean:.0} (paper: 150-200)");

    println!();
    println!("## Figure 1f: devices per workflow (CDF)");
    println!("devices\tfraction");
    let devs: Vec<f64> = s.devices_per_workflow.iter().map(|&d| d as f64).collect();
    for (v, q) in MetaStats::cdf(&devs, 20) {
        println!("{v:.0}\t{q:.2}");
    }
    println!(
        "# min {} .. max {} devices (paper: a few to tens of thousands)",
        s.devices_per_workflow.iter().min().unwrap(),
        s.devices_per_workflow.iter().max().unwrap()
    );
}
