//! Figure 11: FIFO vs LDSF under skewed contention.
//!
//! (a) waiting times on a synthetic trace with skewed contention regions —
//! LDSF prioritizes contended regions and waits less; device- and
//! object-level locks perform similarly because containment relations are
//! fewer; (b) scheduling overheads per policy — FIFO ≈ LDSF at object
//! granularity, LDSF slower at device granularity (more scheduling
//! objects, more complex policy).

use occam_objtree::SplitMode;
use occam_sched::Policy;
use occam_sim::{run, Granularity, SimConfig, SimResult};
use occam_workload::TraceConfig;

fn main() {
    let cfg = TraceConfig::default().skewed();
    let trace = occam_workload::synthesize(&cfg);
    let mut results: Vec<(Policy, Granularity, SimResult)> = Vec::new();
    for policy in [Policy::Fifo, Policy::Ldsf] {
        for granularity in [Granularity::Device, Granularity::Object] {
            let r = run(
                &SimConfig {
                    granularity,
                    policy,
                    scheme: cfg.scheme,
                    split_mode: SplitMode::Split,
                },
                &trace,
            );
            results.push((policy, granularity, r));
        }
    }

    println!("## Figure 11a: waiting times under skewed contention (hours)");
    println!("policy/lock\tmean\tp50\tp90\tp99");
    for (p, g, r) in &results {
        println!(
            "{:?}/{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            p,
            g.name(),
            r.mean_waiting(),
            r.waiting_percentile(50.0),
            r.waiting_percentile(90.0),
            r.waiting_percentile(99.0),
        );
    }
    let fifo_obj = &results[1].2;
    let ldsf_obj = &results[3].2;
    println!(
        "# LDSF vs FIFO mean waiting at object level: {:.1}h vs {:.1}h",
        ldsf_obj.mean_waiting(),
        fifo_obj.mean_waiting()
    );

    println!();
    println!("## Figure 11b: scheduling overheads per policy (microseconds)");
    println!("policy/lock\tmean\tmax");
    for (p, g, r) in &results {
        println!(
            "{:?}/{}\t{:.0}\t{:.0}",
            p,
            g.name(),
            r.mean_sched_time().as_secs_f64() * 1e6,
            r.max_sched_time().as_secs_f64() * 1e6,
        );
    }
}
