//! Developer probe: times each simulator configuration on shrunken traces.
//! Not part of the experiment suite.

use occam_objtree::SplitMode;
use occam_sched::Policy;
use occam_sim::{run, Granularity, SimConfig};
use occam_topology::ProductionScheme;
use occam_workload::{synthesize, TraceConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let trace = synthesize(&TraceConfig {
        num_tasks: n,
        ..TraceConfig::default()
    });
    for policy in [Policy::Fifo, Policy::Ldsf] {
        for granularity in [Granularity::Dc, Granularity::Device, Granularity::Object] {
            let t0 = std::time::Instant::now();
            let r = run(
                &SimConfig {
                    granularity,
                    policy,
                    scheme: ProductionScheme::meta_scale(),
                    split_mode: SplitMode::Split,
                },
                &trace,
            );
            println!(
                "{:?}/{}: {:.2}s mean_completion={:.1}h peak_queue={} scheds={} deadlocks={}",
                policy,
                granularity.name(),
                t0.elapsed().as_secs_f64(),
                r.mean_completion(),
                r.peak_queue(),
                r.sched_stats.invocations,
                r.deadlocks_broken,
            );
        }
    }
}
