//! Machine-readable performance probe: measures object-tree insert
//! throughput, relation-cache effectiveness, and SCHED invocation times,
//! then writes `BENCH_objtree.json` (hand-rolled JSON; no serde).
//!
//! Usage: `cargo run --release -p occam-bench --bin bench_json [num_tasks]`

use occam_objtree::{ObjTree, ObjectId, SplitMode};
use occam_sched::Policy;
use occam_sim::{run, Granularity, SimConfig};
use occam_topology::ProductionScheme;
use occam_workload::{synthesize, TraceConfig};
use std::fmt::Write as _;

/// Inserts a churning mix of dc/pod/rack scopes and returns
/// (inserts, seconds, relate-cache hit ratio).
fn insert_throughput() -> (u64, f64, f64) {
    let mut tree = ObjTree::new();
    let mut live: Vec<ObjectId> = Vec::new();
    let t0 = std::time::Instant::now();
    let mut inserts = 0u64;
    for round in 0..40u32 {
        for dc in 1..4u32 {
            for pod in 0..8u32 {
                let scope = match (round + pod) % 3 {
                    0 => format!("dc{dc:02}.pod{pod:02}.*"),
                    1 => format!("dc{dc:02}.pod{pod:02}.rack{:02}.*", round % 4),
                    _ => format!("dc{dc:02}.*"),
                };
                let region = occam_regex::Pattern::from_glob(&scope).unwrap();
                live.extend(tree.insert_region(&region));
                inserts += 1;
            }
        }
        // Churn: drop half the references so the tree stays bounded and
        // deletions exercise the graft path.
        let keep = live.len() / 2;
        for id in live.drain(keep..) {
            tree.release_ref(id);
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    (inserts, secs, tree.relate_cache_stats().hit_ratio())
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);

    let (inserts, insert_secs, tree_hit_ratio) = insert_throughput();

    let trace = synthesize(&TraceConfig {
        num_tasks: n,
        ..TraceConfig::default()
    });

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"num_tasks\": {n},");
    let _ = writeln!(out, "  \"insert_throughput\": {{");
    let _ = writeln!(out, "    \"inserts\": {inserts},");
    let _ = writeln!(out, "    \"seconds\": {insert_secs:.6},");
    let _ = writeln!(
        out,
        "    \"inserts_per_sec\": {:.1},",
        inserts as f64 / insert_secs
    );
    let _ = writeln!(out, "    \"relate_cache_hit_ratio\": {tree_hit_ratio:.4}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"sched\": [");

    let policies = [Policy::Fifo, Policy::Ldsf];
    for (i, policy) in policies.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let r = run(
            &SimConfig {
                granularity: Granularity::Object,
                policy: *policy,
                scheme: ProductionScheme::meta_scale(),
                split_mode: SplitMode::Split,
            },
            &trace,
        );
        let wall = t0.elapsed().as_secs_f64();
        let s = &r.sched_stats;
        let hit_ratio = s.relate_cache_hit_ratio();
        println!(
            "{policy:?}/obj: {wall:.2}s invocations={} mean={:?} max={:?} relate_hit_ratio={hit_ratio:.4}",
            s.invocations,
            s.mean_time(),
            s.max_time,
        );
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"policy\": \"{policy:?}\",");
        let _ = writeln!(out, "      \"granularity\": \"object\",");
        let _ = writeln!(out, "      \"wall_seconds\": {wall:.4},");
        let _ = writeln!(out, "      \"invocations\": {},", s.invocations);
        let _ = writeln!(
            out,
            "      \"mean_invocation_us\": {:.3},",
            s.mean_time().as_secs_f64() * 1e6
        );
        let _ = writeln!(
            out,
            "      \"max_invocation_us\": {:.3},",
            s.max_time.as_secs_f64() * 1e6
        );
        let _ = writeln!(out, "      \"relate_cache_hit_ratio\": {hit_ratio:.4},");
        let _ = writeln!(
            out,
            "      \"mean_completion_h\": {:.2},",
            r.mean_completion()
        );
        let _ = writeln!(out, "      \"deadlocks_broken\": {}", r.deadlocks_broken);
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 < policies.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");

    std::fs::write("BENCH_objtree.json", &out).expect("write BENCH_objtree.json");
    println!("wrote BENCH_objtree.json");
}
