//! Machine-readable performance probe: measures object-tree insert
//! throughput, relation-cache effectiveness, and SCHED invocation times,
//! then writes `BENCH_objtree.json` (hand-rolled JSON; no serde).
//!
//! Every reported metric is read back from an `occam-obs` [`Registry`] —
//! the microbenchmark binds its own, the simulator runs carry theirs.
//!
//! Usage: `cargo run --release -p occam-bench --bin bench_json [num_tasks]`

use occam_objtree::{ObjTree, ObjectId, SplitMode};
use occam_obs::Registry;
use occam_sched::Policy;
use occam_sim::{run, Granularity, SimConfig};
use occam_topology::ProductionScheme;
use occam_workload::{synthesize, TraceConfig};
use std::fmt::Write as _;

/// The relate-cache hit ratio recorded in a registry's
/// `objtree.relate_cache.*` counters.
fn relate_hit_ratio(reg: &Registry) -> f64 {
    let hits = reg.counter_value("objtree.relate_cache.hits");
    let misses = reg.counter_value("objtree.relate_cache.misses");
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// Inserts a churning mix of dc/pod/rack scopes and returns
/// (inserts, seconds, relate-cache hit ratio) — all three read from the
/// microbenchmark's own registry.
fn insert_throughput() -> (u64, f64, f64) {
    let reg = Registry::new();
    let mut tree = ObjTree::with_obs(SplitMode::Split, &reg);
    let mut live: Vec<ObjectId> = Vec::new();
    let t0 = std::time::Instant::now();
    for round in 0..40u32 {
        for dc in 1..4u32 {
            for pod in 0..8u32 {
                let scope = match (round + pod) % 3 {
                    0 => format!("dc{dc:02}.pod{pod:02}.*"),
                    1 => format!("dc{dc:02}.pod{pod:02}.rack{:02}.*", round % 4),
                    _ => format!("dc{dc:02}.*"),
                };
                let region = occam_regex::Pattern::from_glob(&scope).unwrap();
                live.extend(tree.insert_region(&region));
            }
        }
        // Churn: drop half the references so the tree stays bounded and
        // deletions exercise the graft path.
        let keep = live.len() / 2;
        for id in live.drain(keep..) {
            tree.release_ref(id);
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    (
        reg.counter_value("objtree.inserts"),
        secs,
        relate_hit_ratio(&reg),
    )
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);

    let (inserts, insert_secs, tree_hit_ratio) = insert_throughput();

    let trace = synthesize(&TraceConfig {
        num_tasks: n,
        ..TraceConfig::default()
    });

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"num_tasks\": {n},");
    let _ = writeln!(out, "  \"insert_throughput\": {{");
    let _ = writeln!(out, "    \"inserts\": {inserts},");
    let _ = writeln!(out, "    \"seconds\": {insert_secs:.6},");
    let _ = writeln!(
        out,
        "    \"inserts_per_sec\": {:.1},",
        inserts as f64 / insert_secs
    );
    let _ = writeln!(out, "    \"relate_cache_hit_ratio\": {tree_hit_ratio:.4}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"sched\": [");

    let policies = [Policy::Fifo, Policy::Ldsf];
    for (i, policy) in policies.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let r = run(
            &SimConfig {
                granularity: Granularity::Object,
                policy: *policy,
                scheme: ProductionScheme::meta_scale(),
                split_mode: SplitMode::Split,
            },
            &trace,
        );
        let wall = t0.elapsed().as_secs_f64();
        let invocations = r.obs.counter_value("sched.invocations");
        let snap = r
            .obs
            .histogram_snapshot("sched.invocation_ns")
            .expect("scheduler records invocation latency");
        let hit_ratio = relate_hit_ratio(&r.obs);
        println!(
            "{policy:?}/obj: {wall:.2}s invocations={invocations} mean={:.3}us max={:.3}us relate_hit_ratio={hit_ratio:.4}",
            snap.mean() / 1e3,
            snap.max as f64 / 1e3,
        );
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"policy\": \"{policy:?}\",");
        let _ = writeln!(out, "      \"granularity\": \"object\",");
        let _ = writeln!(out, "      \"wall_seconds\": {wall:.4},");
        let _ = writeln!(out, "      \"invocations\": {invocations},");
        let _ = writeln!(
            out,
            "      \"mean_invocation_us\": {:.3},",
            snap.mean() / 1e3
        );
        let _ = writeln!(
            out,
            "      \"max_invocation_us\": {:.3},",
            snap.max as f64 / 1e3
        );
        let _ = writeln!(out, "      \"relate_cache_hit_ratio\": {hit_ratio:.4},");
        let _ = writeln!(
            out,
            "      \"mean_completion_h\": {:.2},",
            r.mean_completion()
        );
        let _ = writeln!(
            out,
            "      \"deadlocks_broken\": {}",
            r.obs.counter_value("sim.deadlocks_broken")
        );
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 < policies.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");

    std::fs::write("BENCH_objtree.json", &out).expect("write BENCH_objtree.json");
    println!("wrote BENCH_objtree.json");
}
