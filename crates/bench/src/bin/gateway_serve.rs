//! Serves an emulated deployment over the gateway wire protocol.
//!
//! Builds a `k`-ary Fat-tree with a seeded database (the standard
//! harness from `occam::emulated_deployment`), fronts it with the
//! admission-controlled gateway engine, and listens for clients until
//! one of them sends SHUTDOWN — then drains in-flight work and exits.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p occam-bench --bin gateway_serve \
//!     [addr] [pool_size] [queue_cap] [k]
//! # defaults: 127.0.0.1:7421  8  64  6
//! ```

use occam_gateway::{Engine, EngineConfig, GatewayServer};

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7421".into());
    let pool_size: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let queue_cap: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let k: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);

    let (runtime, ft) = occam::emulated_deployment(1, k);
    let engine = Engine::new(
        runtime,
        EngineConfig {
            pool_size,
            queue_cap,
            ..EngineConfig::default()
        },
    );
    let mut server = GatewayServer::start(engine, &addr).expect("bind gateway address");
    println!(
        "occam-gateway serving {} switches on {} (pool={pool_size}, queue_cap={queue_cap})",
        ft.all_switches().len(),
        server.local_addr()
    );
    println!(
        "send a SHUTDOWN frame (`gateway_loadgen shutdown <addr>`, or GatewayClient::shutdown) to stop"
    );

    server.wait_shutdown_requested();
    println!("shutdown requested; draining in-flight work");
    server.shutdown();

    let reg = server.engine().runtime().obs();
    println!(
        "served {} frames, completed {} tasks, rejected {} submissions",
        reg.counter_value("gateway.frames.rx"),
        reg.counter_value("gateway.tasks.completed"),
        reg.counter_value("gateway.submit.rejected"),
    );
}
