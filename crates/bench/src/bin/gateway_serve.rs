//! Serves an emulated deployment over the gateway wire protocol.
//!
//! Builds a `k`-ary Fat-tree with a seeded database (the standard
//! harness from `occam::emulated_deployment`), fronts it with the
//! admission-controlled gateway engine, and listens for clients until
//! one of them sends SHUTDOWN — then drains in-flight work and exits.
//!
//! With `--followers N` the database is replicated to `N` in-process
//! follower replicas (DESIGN.md §14) and scoped reads — `status_audit`
//! views, `Network::view()` — are routed to caught-up followers, with
//! the observed staleness recorded under `netdb.repl.read_lag_commits`.
//! `--max-lag N` sets the routed-read staleness bound: a follower more
//! than `N` commits behind the leader is skipped (leader fallback).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p occam-bench --bin gateway_serve \
//!     [addr] [pool_size] [queue_cap] [k] [--followers N] [--max-lag N]
//! # defaults: 127.0.0.1:7421  8  64  6  --followers 0  --max-lag 4
//! ```

use occam::netdb::{ReplicaConfig, ReplicaSet};
use occam_gateway::{Engine, EngineConfig, GatewayServer};
use std::time::Duration;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut followers: usize = 0;
    let mut max_lag: u64 = ReplicaConfig::default().max_lag;
    let mut positional: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--followers" {
            followers = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--followers takes a count");
        } else if let Some(v) = a.strip_prefix("--followers=") {
            followers = v.parse().expect("--followers takes a count");
        } else if a == "--max-lag" {
            max_lag = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--max-lag takes a commit count");
        } else if let Some(v) = a.strip_prefix("--max-lag=") {
            max_lag = v.parse().expect("--max-lag takes a commit count");
        } else {
            positional.push(a);
        }
    }
    let mut args = positional.into_iter();
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7421".into());
    let pool_size: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let queue_cap: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let k: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);

    let (runtime, ft) = occam::emulated_deployment(1, k);
    let replicas = if followers > 0 {
        let set = ReplicaSet::start(
            runtime.db().clone(),
            ReplicaConfig {
                followers,
                max_lag,
                ..ReplicaConfig::default()
            },
        );
        assert!(
            set.wait_converged(Duration::from_secs(30)),
            "followers failed to bootstrap"
        );
        runtime.attach_read_router(set.router());
        println!(
            "replicating to {followers} follower(s); scoped reads routed to replicas \
             (staleness bound {max_lag} commits)"
        );
        Some(set)
    } else {
        None
    };
    let engine = Engine::new(
        runtime,
        EngineConfig {
            pool_size,
            queue_cap,
            ..EngineConfig::default()
        },
    );
    let mut server = GatewayServer::start(engine, &addr).expect("bind gateway address");
    println!(
        "occam-gateway serving {} switches on {} (pool={pool_size}, queue_cap={queue_cap})",
        ft.all_switches().len(),
        server.local_addr()
    );
    println!(
        "send a SHUTDOWN frame (`gateway_loadgen shutdown <addr>`, or GatewayClient::shutdown) to stop"
    );

    server.wait_shutdown_requested();
    println!("shutdown requested; draining in-flight work");
    server.shutdown();

    let reg = server.engine().runtime().obs();
    println!(
        "served {} frames, completed {} tasks, rejected {} submissions",
        reg.counter_value("gateway.frames.rx"),
        reg.counter_value("gateway.tasks.completed"),
        reg.counter_value("gateway.submit.rejected"),
    );
    if let Some(set) = replicas {
        println!(
            "replica reads: {} follower, {} leader ({} stale fallbacks)",
            set.obs().counter_value("netdb.repl.reads.follower"),
            set.obs().counter_value("netdb.repl.reads.leader"),
            set.obs().counter_value("netdb.repl.reads.stale_fallback"),
        );
        server.engine().runtime().detach_read_router();
        set.shutdown();
    }
}
