//! Figure 13: four concurrent management tasks under FIFO vs LDSF.
//!
//! (a) traffic is undisrupted under either policy — background traffic
//! stays flat, denylisted flows drop to zero, inspected traffic reroutes
//! through the middlebox; (b) the scheduling timeline diverges: when the
//! contended object frees, FIFO grants the earlier-arrived ping-test
//! (task 2) while LDSF grants the denylist task (task 3), whose dependency
//! set also contains task 4.

use occam::emunet::{Delivery, DeviceService, FlowClass};
use occam::objtree::{LockMode, ObjTree, TaskId};
use occam::regex::Pattern;
use occam::sched::{Policy, Scheduler};

/// Figure 13b: the discrete scheduling decision, per policy.
fn decision(policy: Policy) -> (TaskId, Vec<String>) {
    let mut timeline = Vec::new();
    let mut tree = ObjTree::new();
    let switch = tree.insert_region(&Pattern::from_glob("dc01.pod00.agg00").unwrap())[0];
    let other = tree.insert_region(&Pattern::from_glob("dc01.pod01.tor00").unwrap())[0];
    tree.request_lock(TaskId(1), switch, LockMode::Exclusive, 0, false);
    tree.grant(switch, TaskId(1)).unwrap();
    timeline.push("t=0 task1 (middlebox_rerouting) acquires the switch".to_string());
    tree.request_lock(TaskId(3), other, LockMode::Exclusive, 1, false);
    tree.grant(other, TaskId(3)).unwrap();
    timeline.push("t=1 task3 (denylist) acquires a second object".to_string());
    tree.request_lock(TaskId(2), switch, LockMode::Exclusive, 2, false);
    timeline.push("t=2 task2 (ping_test) blocks on the switch".to_string());
    tree.request_lock(TaskId(3), switch, LockMode::Exclusive, 3, false);
    timeline.push("t=3 task3 blocks on the switch too".to_string());
    tree.request_lock(TaskId(4), other, LockMode::Exclusive, 4, false);
    timeline.push("t=4 task4 (ping_test) blocks behind task3".to_string());
    tree.release_task(TaskId(1));
    timeline.push("t=5 task1 commits; SCHED runs".to_string());
    let mut sched = Scheduler::new(policy);
    let grants = sched.sched(&mut tree);
    let winner = grants
        .iter()
        .find(|g| g.obj == switch)
        .map(|g| g.task)
        .expect("switch granted");
    timeline.push(format!(
        "t=5 {policy:?} grants the switch to task{}",
        winner.0
    ));
    (winner, timeline)
}

/// Figure 13a: traffic rates while the four tasks run under the full
/// runtime.
fn traffic(policy: Policy) -> (f64, f64, f64, usize) {
    let (runtime, ft) = {
        let ft = occam::topology::FatTree::build(1, 6).unwrap();
        let db = std::sync::Arc::new(occam::netdb::Database::new());
        for (_, d) in ft
            .topo
            .devices()
            .filter(|(_, d)| d.role != occam::topology::Role::Host)
        {
            db.insert_device(&d.name, vec![]).unwrap();
        }
        let service = std::sync::Arc::new(occam::emunet::EmuService::new(
            occam::emunet::EmuNet::from_fattree(&ft),
        ));
        (occam::Runtime::with_policy(db, service, policy), ft)
    };
    let svc = occam::emu_service(&runtime);
    let (bg, sus, insp) = {
        let net = svc.net();
        let mut guard = net.lock();
        let bg = guard.add_flow(
            ft.hosts[1][0][0],
            ft.hosts[4][0][0],
            80.0,
            FlowClass::Background,
        );
        let sus = guard.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[2][0][0],
            20.0,
            FlowClass::Suspicious,
        );
        let insp = guard.add_flow(
            ft.hosts[0][0][1],
            ft.hosts[2][0][1],
            40.0,
            FlowClass::Inspected,
        );
        (bg, sus, insp)
    };

    let mut handles = Vec::new();
    type Program = Box<dyn FnMut(&occam::TaskCtx) -> occam::TaskResult<()> + Send>;
    let programs: Vec<(&str, Program)> = vec![
        (
            "middlebox_rerouting",
            Box::new(|ctx: &occam::TaskCtx| {
                let net = ctx.network("dc01.pod05.agg00")?;
                net.apply("f_reroute_middlebox")?;
                ctx.runtime().service().advance(2);
                Ok(())
            }),
        ),
        (
            "ping_test_a",
            Box::new(|ctx: &occam::TaskCtx| {
                let net = ctx.network("dc01.pod05.agg00")?;
                net.apply("f_alloc_ip")?;
                net.apply("f_ping_test")?;
                net.apply("f_dealloc_ip")?;
                Ok(())
            }),
        ),
        (
            "denylist",
            Box::new(|ctx: &occam::TaskCtx| {
                // Block suspicious traffic at every ToR of pod00.
                let net = ctx.network("dc01.pod00.tor*")?;
                net.apply("f_denylist")?;
                ctx.runtime().service().advance(2);
                Ok(())
            }),
        ),
        (
            "ping_test_b",
            Box::new(|ctx: &occam::TaskCtx| {
                let net = ctx.network("dc01.pod00.tor00")?;
                net.apply("f_alloc_ip")?;
                net.apply("f_ping_test")?;
                net.apply("f_dealloc_ip")?;
                Ok(())
            }),
        ),
    ];
    for (name, program) in programs {
        let rt = runtime.clone();
        handles.push(rt.clone().task(name).spawn(program));
        std::thread::sleep(std::time::Duration::from_millis(15));
    }
    for h in handles {
        assert_eq!(h.join().unwrap().state, occam::TaskState::Completed);
    }
    svc.advance(4);

    let net = svc.net();
    let guard = net.lock();
    let last = guard.history().last().unwrap();
    let disrupted = guard
        .history()
        .iter()
        .filter(|s| {
            matches!(s.flow_rate.get(&bg), Some((Delivery::BlackHoled, _)))
                || matches!(s.flow_rate.get(&bg), Some((Delivery::NoPath, _)))
        })
        .count();
    (
        last.flow_rate[&bg].1,
        last.flow_rate[&sus].1,
        last.flow_rate[&insp].1,
        disrupted,
    )
}

fn main() {
    println!("## Figure 13b: scheduling timeline");
    for policy in [Policy::Fifo, Policy::Ldsf] {
        let (winner, timeline) = decision(policy);
        println!("{policy:?}:");
        for line in &timeline {
            println!("  {line}");
        }
        match policy {
            Policy::Fifo => assert_eq!(winner, TaskId(2)),
            Policy::Ldsf => assert_eq!(winner, TaskId(3)),
        }
    }

    println!();
    println!("## Figure 13a: final traffic rates after all four tasks (Mbps)");
    println!("policy\tbackground\tblocked\trerouted\tdisrupted_bg_ticks");
    for policy in [Policy::Fifo, Policy::Ldsf] {
        let (bg, sus, insp, disrupted) = traffic(policy);
        println!("{policy:?}\t{bg:.0}\t{sus:.0}\t{insp:.0}\t{disrupted}");
        assert_eq!(bg, 80.0, "background traffic stable");
        assert_eq!(sus, 0.0, "suspicious traffic blocked");
        assert_eq!(
            insp, 40.0,
            "inspected traffic still delivered (via middlebox)"
        );
        assert_eq!(disrupted, 0, "no disruption of background traffic");
    }
}
