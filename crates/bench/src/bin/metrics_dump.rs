//! Exercises every instrument in the DESIGN.md §9 metrics contract and
//! writes `BENCH_obs.json` (hand-rolled JSON; no serde).
//!
//! Two registries are dumped:
//!
//! - `runtime`: an emulated deployment running read, write, concurrent,
//!   and deliberately-aborted tasks — covering the `core.*`, `netdb.*`,
//!   `objtree.*`, and `sched.*` families plus the structured event ring;
//! - `sim`: one Object-granularity simulation run — covering `sim.*` and
//!   the simulator's shared `objtree.*` / `sched.*` instruments;
//! - `gateway`: an in-process gateway server driven over real TCP —
//!   covering the `gateway.*` family (submissions, admission, frames,
//!   connections, latency histograms) plus the runtime's cancellation
//!   and panic-containment counters;
//! - `update`: a planned configuration update driven diff → synthesis →
//!   verification → wave execution — covering the `update.*` family;
//! - `occ`: optimistic tasks committing, conflicting, and falling back
//!   with the serializability certifier attached — covering the
//!   `core.occ.*` and `cert.*` families;
//! - `spec`: declarative workflows compiled from catalog templates, a
//!   fleet audit refreshed through the incremental view cache, and a
//!   rejected spec — covering the `spec.*` and `netdb.view.*` families.
//!
//! The binary fails loudly if any contract name is missing from the dump,
//! so drift between DESIGN.md §9 and the code is caught by running it.
//!
//! Usage: `cargo run --release -p occam-bench --bin metrics_dump`

use occam::netdb::attrs;
use occam::obs::Registry;
use occam_objtree::SplitMode;
use occam_sched::Policy;
use occam_sim::{run, Granularity, SimConfig};
use occam_workload::{synthesize, TraceConfig};

/// The §9 families the runtime registry must carry.
const RUNTIME_NAMES: &[&str] = &[
    "core.tasks.submitted",
    "core.tasks.completed",
    "core.tasks.aborted",
    "core.task_wall_ns",
    "core.lock.acquires",
    "core.lock_wait_ns",
    "core.deadlocks",
    "core.rollback.plans",
    "core.task.retries",
    "core.task.retry_rollback_failed",
    "core.ops.get",
    "core.ops.set",
    "core.ops.apply",
    "netdb.queries",
    "netdb.query_ns",
    "netdb.wal.appends",
    "netdb.wal.records",
    "netdb.wal.append_ns",
    "netdb.snapshot_ns",
    "netdb.shard.commits",
    "netdb.shard.read_lock_free",
    "objtree.inserts",
    "objtree.splits",
    "objtree.deletes",
    "objtree.insert_ns",
    "objtree.delete_ns",
    "objtree.relate_cache.hits",
    "objtree.relate_cache.misses",
    "objtree.relate_cache.evictions",
    "sched.invocations",
    "sched.grants",
    "sched.invocation_ns",
];

/// The §9 families the gateway registry must carry (on top of the
/// runtime families, which share the same registry).
const GATEWAY_NAMES: &[&str] = &[
    "gateway.submit.accepted",
    "gateway.submit.rejected",
    "gateway.submit.unknown",
    "gateway.tasks.completed",
    "gateway.tasks.aborted",
    "gateway.tasks.cancelled",
    "gateway.cancel.requests",
    "gateway.conn.opened",
    "gateway.conn.closed",
    "gateway.frames.rx",
    "gateway.frames.tx",
    "gateway.proto.errors",
    "gateway.queue_wait_ns",
    "gateway.e2e_ns",
    "gateway.queue_depth",
    "gateway.reactor.events",
    "gateway.reactor.batch_len",
    "gateway.reactor.wouldblock",
    "core.tasks.cancelled",
    "core.task.panicked",
];

/// The §9 / §11 families a chaos-campaign registry must carry (on top
/// of the runtime families, which share the same registry).
const CHAOS_NAMES: &[&str] = &[
    "chaos.campaigns",
    "chaos.tasks",
    "chaos.tasks.completed",
    "chaos.tasks.rolled_back",
    "chaos.crashes",
    "chaos.invariant.violations",
    "chaos.faults.db",
    "chaos.faults.device",
    "core.task.retries",
    "core.task.retry_rollback_failed",
];

/// The §9 / §14 families a replication registry must carry (on top of
/// the `netdb.*` families, which share the same registry). All are bound
/// eagerly when a [`occam::netdb::ReplicaSet`] starts, so the contract
/// holds even before traffic flows.
const REPL_NAMES: &[&str] = &[
    "netdb.repl.ship.batches",
    "netdb.repl.ship.records",
    "netdb.repl.ship.snapshots",
    "netdb.repl.acks",
    "netdb.repl.follower.applied",
    "netdb.repl.reads.follower",
    "netdb.repl.reads.leader",
    "netdb.repl.reads.stale_fallback",
    "netdb.repl.failovers",
    "netdb.repl.lag_ns",
    "netdb.repl.read_lag_commits",
    "netdb.repl.failover_ns",
];

/// The §9 / §15 families an update-planner registry must carry (on top
/// of the runtime families, which share the same registry). All are
/// bound eagerly by [`occam::update::UpdateObs::bind`], so the contract
/// holds before any plan is synthesized.
const UPDATE_NAMES: &[&str] = &[
    "update.diff.ops",
    "update.synth.plans",
    "update.synth.waves",
    "update.synth.checks",
    "update.synth.splits",
    "update.synth.barriers",
    "update.synth.counterexamples",
    "update.synth_ns",
    "update.verify_ns",
    "update.verify.violations",
    "update.exec.waves",
    "update.exec.failures",
    "update.exec.rollbacks",
    "update.exec.publications",
    "update.exec.wave_ns",
];

/// The §9 / §16 families an isolation registry must carry (on top of
/// the runtime families, which share the same registry). The `core.occ.*`
/// instruments are bound eagerly at runtime construction and the `cert.*`
/// instruments when a [`occam::cert::Certifier`] binds to the registry,
/// so the contract holds before any optimistic task runs.
const OCC_NAMES: &[&str] = &[
    "core.occ.commits",
    "core.occ.aborts",
    "core.occ.fallbacks",
    "core.occ.validate_ns",
    "cert.tasks",
    "cert.commits",
    "cert.aborts",
    "cert.edges",
    "cert.retired",
    "cert.violations",
    "cert.window",
    "cert.check_ns",
];

/// The §9 / §17 families a spec-driven registry must carry (on top of
/// the runtime families, which share the same registry). The `spec.*`
/// instruments bind when the first templated program compiles; the
/// `netdb.view.*` instruments when the view cache serves its first
/// audit refresh.
const SPEC_NAMES: &[&str] = &[
    "spec.compiled",
    "spec.rejected",
    "spec.compile_ns",
    "spec.audit.runs",
    "spec.audit.devices",
    "spec.audit.non_compliant",
    "netdb.view.refreshes",
    "netdb.view.hits",
    "netdb.view.dirty_shards",
    "netdb.view.recompute_ns",
];

/// The §9 families the simulation registry must carry.
const SIM_NAMES: &[&str] = &[
    "sim.queue_depth",
    "sim.active_objects",
    "sim.tasks.completed",
    "sim.tasks.zero_wait",
    "sim.deadlocks_broken",
    "sim.task_completion_mh",
    "sim.task_waiting_mh",
    "objtree.inserts",
    "sched.invocations",
];

fn check_contract(section: &str, reg: &Registry, names: &[&str]) {
    let counters: Vec<String> = reg.counters().into_iter().map(|(n, _)| n).collect();
    let histograms: Vec<String> = reg.histograms().into_iter().map(|(n, _)| n).collect();
    for name in names {
        assert!(
            counters.iter().any(|n| n == name) || histograms.iter().any(|n| n == name),
            "{section}: instrument `{name}` from DESIGN.md §9 is missing"
        );
    }
    println!(
        "{section}: {} counters, {} histograms, {} events recorded",
        counters.len(),
        histograms.len(),
        reg.events().recorded()
    );
}

/// Drives the emulated runtime through every instrumented code path.
fn exercise_runtime() -> occam::Runtime {
    let (runtime, _ft) = occam::emulated_deployment(1, 6);

    // Read-only audit: shared locks, `get` operations, database queries.
    let report = runtime.task("audit").run(|ctx| {
        let net = ctx.network_read("dc01.pod00.*")?;
        let _ = net.devices()?;
        let _ = net.get(attrs::DEVICE_STATUS)?;
        net.close();
        Ok(())
    });
    assert_eq!(report.state, occam::TaskState::Completed);

    // Concurrent writers on one pod: exclusive locks, WAL appends, device
    // functions, and (for whichever task arrives second) real lock waits.
    std::thread::scope(|s| {
        for i in 0..2 {
            let rt = runtime.clone();
            s.spawn(move || {
                let name = format!("maintenance_{i}");
                let report = rt.task(&name).run(|ctx| {
                    let net = ctx.network("dc01.pod01.*")?;
                    net.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
                    net.apply("f_drain")?;
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    net.apply("f_undrain")?;
                    net.set(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE.into())?;
                    net.close();
                    Ok(())
                });
                assert_eq!(report.state, occam::TaskState::Completed);
            });
        }
    });

    // A task that fails mid-flight: abort accounting plus a generated
    // rollback plan (`core.rollback.plans`, `rollback_planned` event).
    let report = runtime.task("doomed").run(|ctx| {
        let net = ctx.network("dc01.pod02.*")?;
        net.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
        Err(occam::TaskError::Failed("induced failure".into()))
    });
    assert_eq!(report.state, occam::TaskState::Aborted);
    assert!(report.rollback.is_some());

    runtime
}

/// Drives a full gateway round over TCP: accepted work, a typed
/// rejection, a cancellation, a contained panic, and a garbage frame.
fn exercise_gateway() -> occam::obs::Registry {
    use occam_gateway::{Engine, EngineConfig, GatewayClient, GatewayServer, SubmitReply};

    let (runtime, _ft) = occam::emulated_deployment(1, 4);
    // A contained panic: the worker survives and `core.task.panicked`
    // lands in the shared registry. Hook silenced so the induced panic
    // does not spray a backtrace over the report.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = runtime
        .task("panicky")
        .spawn_pooled(|_| panic!("induced panic"))
        .wait();
    std::panic::set_hook(hook);
    assert_eq!(report.state, occam::TaskState::Aborted);
    // A pre-cancelled task: `core.tasks.cancelled`.
    let token = occam::core::CancelToken::new();
    token.cancel();
    runtime
        .task("cancelled")
        .cancel_token(token)
        .spawn_pooled(|_| Ok(()))
        .wait();

    let engine = Engine::new(runtime, EngineConfig::default());
    let mut server = GatewayServer::start(engine, "127.0.0.1:0").expect("bind gateway");
    let addr = server.local_addr().to_string();

    let mut client = GatewayClient::connect(&addr).expect("connect");
    let SubmitReply::Accepted(ticket) = client
        .submit("device_maintenance", "dc01.pod00.*", false, &[])
        .expect("submit")
    else {
        panic!("expected acceptance");
    };
    loop {
        let (phase, _) = client.status(ticket).expect("status");
        if phase.is_terminal() {
            break;
        }
    }
    assert!(matches!(
        client.submit("no_such_workflow", "dc01.*", false, &[]),
        Ok(SubmitReply::Rejected(..))
    ));
    client.cancel(ticket).expect("cancel roundtrip");
    assert!(!client.list().expect("list").is_empty());

    // A garbage frame: the server answers with a typed error and counts
    // it under `gateway.proto.errors`.
    {
        use std::io::Write as _;
        let mut raw = std::net::TcpStream::connect(&addr).expect("connect raw");
        raw.write_all(&5u32.to_be_bytes()).expect("len");
        raw.write_all(&[0xEE, 1, 2, 3, 4]).expect("body");
        raw.flush().expect("flush");
        let mut resp = Vec::new();
        use std::io::Read as _;
        let _ = raw.read_to_end(&mut resp);
        assert!(!resp.is_empty(), "expected a typed error frame back");
    }

    let reg = server.engine().runtime().obs().clone();
    server.shutdown();
    assert!(reg.counter_value("gateway.proto.errors") >= 1);
    reg
}

/// Drives the consistent-update planner end-to-end: config diff, wave
/// synthesis, independent verification, and plan execution through the
/// transactional runtime.
fn exercise_update() -> occam::Runtime {
    use occam::netdb::{StoreSnapshot, WalRecord};
    use occam::regex::Pattern;
    use occam::update::{diff, execute_plan, ExecOptions, Synthesizer, TrafficClass, UpdateObs};

    let (runtime, ft) = occam::emulated_deployment(1, 4);
    let obs = UpdateObs::bind(runtime.obs());

    // Target config: new firmware on every pod-0/1 aggregation switch.
    let old = runtime.db().snapshot();
    let scope = Pattern::from_glob("dc01.pod0[01].agg*").expect("glob");
    let mut records: Vec<WalRecord> = old
        .select_devices(&Pattern::universe())
        .into_iter()
        .map(|name| {
            let device_attrs = old.device_attrs(&name).unwrap_or_default();
            WalRecord::InsertDevice {
                name,
                attrs: device_attrs.into_iter().collect(),
            }
        })
        .collect();
    for name in old.select_devices(&scope) {
        records.push(WalRecord::SetDeviceAttr {
            name: name.clone(),
            attr: attrs::FIRMWARE_VERSION.into(),
            value: "fw-9.0.0".into(),
        });
        records.push(WalRecord::SetDeviceAttr {
            name,
            attr: "CONFIG_VERSION".into(),
            value: "obs-demo".into(),
        });
    }
    let target = StoreSnapshot::replay(&records);
    let ops = diff(&old, &target);
    obs.diff_ops.add(ops.len() as u64);

    // Cross-pod flows pin ECMP paths through the upgraded aggs, so the
    // synthesizer must stagger the drains into multiple waves.
    let classes = vec![
        TrafficClass::pair("p0-p1", ft.hosts[0][0][0], ft.hosts[1][1][0], 0),
        TrafficClass::pair("p1-p0", ft.hosts[1][0][0], ft.hosts[0][1][0], 1),
    ];
    let synth = Synthesizer::new(&ft.topo, &classes).with_obs(&obs);
    let plan = synth.synthesize(&ops).expect("feasible update plan");
    assert!(
        synth.verify(&plan).is_empty(),
        "synthesized plan must verify clean"
    );
    let opts = ExecOptions {
        obs: Some(obs),
        ..ExecOptions::default()
    };
    let report = execute_plan(&runtime, &plan, &opts, None);
    assert!(report.ok(), "plan execution failed: {:?}", report.error);
    runtime
}

/// Drives the optimistic isolation path: a certified OCC commit, a
/// validation conflict with 2PL fallback, and the certifier's acyclicity
/// verdict over the mixed history.
fn exercise_occ() -> occam::Runtime {
    use occam::Isolation;
    use std::sync::Arc;

    let (runtime, _ft) = occam::emulated_deployment(1, 4);
    let cert = Arc::new(occam::cert::Certifier::with_obs(runtime.obs()));
    runtime.attach_certifier(Arc::clone(&cert));

    // One clean optimistic commit: `core.occ.commits` + a certified
    // footprint from the OCC path.
    let report = runtime
        .task("optimistic_audit")
        .isolation(Isolation::Occ { max_retries: 3 })
        .run(|ctx| {
            let net = ctx.network("dc01.pod00.*")?;
            let _ = net.get(attrs::DEVICE_STATUS)?;
            net.set("AUDIT_MARK", 1i64.into())?;
            Ok(())
        });
    assert_eq!(report.state, occam::TaskState::Completed);

    // A sabotaged attempt: a concurrent commit lands after the OCC
    // snapshot, so validation conflicts (`core.occ.aborts`) and the
    // driver exhausts its retries into a 2PL fallback
    // (`core.occ.fallbacks`).
    let db = Arc::clone(runtime.db());
    let contended = std::sync::atomic::AtomicU32::new(0);
    let report = runtime
        .task("contended_write")
        .isolation(Isolation::Occ { max_retries: 0 })
        .run(move |ctx| {
            let net = ctx.network("dc01.pod01.tor00")?;
            let _ = net.get(attrs::DEVICE_STATUS)?;
            if contended.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0 {
                let pat = occam::regex::Pattern::from_glob("dc01.pod01.tor00").expect("glob");
                db.set_attr(&pat, "INTERFERENCE", 1i64.into())
                    .expect("poke");
            }
            net.set("AUDIT_MARK", 2i64.into())?;
            Ok(())
        });
    assert_eq!(report.state, occam::TaskState::Completed);
    assert!(cert.is_acyclic(), "{:?}", cert.first_violation());
    runtime.detach_certifier();
    runtime
}

/// Drives the declarative-spec pipeline: catalog workflows compiled
/// from their templates, a drained pod surfacing a real non-compliant
/// set through the audit view, a warm re-audit reusing every shard
/// partial, and a spec the validator must reject.
fn exercise_spec() -> occam::Runtime {
    use occam_gateway::{Catalog, WorkflowSpec};

    let (runtime, _ft) = occam::emulated_deployment(1, 4);
    let cat = Catalog::standard();

    // A maintenance workflow compiled from its spec template:
    // `spec.compiled` + `spec.compile_ns`.
    let prog = cat
        .build("device_maintenance", WorkflowSpec::new("dc01.pod00.*", &[]))
        .expect("catalog entry");
    let report = runtime.task("device_maintenance").run(|ctx| prog(ctx));
    assert_eq!(
        report.state,
        occam::TaskState::Completed,
        "{:?}",
        report.error
    );

    // Drain one pod so the fleet audit reports a real non-compliant set
    // (`spec.audit.*`); the audit's first refresh is the cold scan that
    // seeds the view cache (`netdb.view.refreshes` / `dirty_shards`).
    let prog = cat
        .build("drain", WorkflowSpec::new("dc01.pod01.*", &[]))
        .expect("catalog entry");
    let report = runtime.task("drain").run(|ctx| prog(ctx));
    assert_eq!(
        report.state,
        occam::TaskState::Completed,
        "{:?}",
        report.error
    );
    for name in ["status_audit", "status_audit_warm"] {
        // The second audit lands at the same committed version, so every
        // shard partial is reused (`netdb.view.hits`).
        let prog = cat
            .build("status_audit", WorkflowSpec::new("dc01.*", &[]))
            .expect("catalog entry");
        let report = runtime.task(name).run(|ctx| prog(ctx));
        assert_eq!(
            report.state,
            occam::TaskState::Completed,
            "{:?}",
            report.error
        );
    }

    // A template whose lowering the static validator must reject — wave
    // plans cannot carry device tests — counted under `spec.rejected`.
    let report = runtime.task("rejected_spec").run(|ctx| {
        occam::spec::template_program(
            "spec bad {\n scope $scope\n strategy waves\n test optic\n}\n",
            "dc01.*".into(),
            Default::default(),
        )(ctx)
    });
    assert_eq!(report.state, occam::TaskState::Aborted);

    runtime
}

/// Drives a replica set through shipping, routed reads, a stale
/// fallback, and a failover, then returns its registry.
fn exercise_repl() -> occam::obs::Registry {
    use occam::netdb::{Database, ReplicaConfig, ReplicaSet};
    use std::sync::Arc;
    use std::time::Duration;

    let reg = occam::obs::Registry::new();
    let leader_db = Arc::new(Database::with_obs(&reg));
    for i in 0..16 {
        leader_db
            .insert_device(&format!("dc01.pod00.sw{i:02}"), vec![])
            .expect("seed device");
    }
    let set = ReplicaSet::start(
        Arc::clone(&leader_db),
        ReplicaConfig {
            followers: 2,
            quorum: 1,
            ..ReplicaConfig::default()
        },
    );
    assert_eq!(
        set.leader().wait_acked(16, Duration::from_secs(10)),
        16,
        "quorum ack"
    );
    assert!(set.wait_converged(Duration::from_secs(10)), "convergence");
    let router = set.router();
    for _ in 0..8 {
        router.snapshot().expect("routed read");
    }
    // Partition both followers and write through: the next routed read
    // exceeds the staleness bound and falls back to the leader.
    set.set_partitioned(0, true);
    set.set_partitioned(1, true);
    for i in 0..8 {
        leader_db
            .insert_device(&format!("dc01.pod01.sw{i:02}"), vec![])
            .expect("write");
    }
    router.snapshot().expect("stale fallback read");
    set.set_partitioned(0, false);
    set.set_partitioned(1, false);
    assert!(set.wait_converged(Duration::from_secs(10)), "heal");
    let (set, _promotion) = set.failover();
    set.shutdown();
    reg
}

fn main() {
    let runtime = exercise_runtime();
    check_contract("runtime", runtime.obs(), RUNTIME_NAMES);

    let repl_reg = exercise_repl();
    check_contract("repl", &repl_reg, REPL_NAMES);
    assert!(repl_reg.counter_value("netdb.repl.reads.follower") >= 1);
    assert!(repl_reg.counter_value("netdb.repl.reads.stale_fallback") >= 1);
    assert!(repl_reg.counter_value("netdb.repl.failovers") >= 1);

    let gateway_reg = exercise_gateway();
    check_contract("gateway", &gateway_reg, GATEWAY_NAMES);

    let occ_rt = exercise_occ();
    check_contract("occ", occ_rt.obs(), OCC_NAMES);
    assert!(occ_rt.obs().counter_value("core.occ.commits") >= 1);
    assert!(occ_rt.obs().counter_value("core.occ.aborts") >= 1);
    assert!(occ_rt.obs().counter_value("core.occ.fallbacks") >= 1);
    assert_eq!(occ_rt.obs().counter_value("cert.violations"), 0);

    let spec_rt = exercise_spec();
    check_contract("spec", spec_rt.obs(), SPEC_NAMES);
    assert!(spec_rt.obs().counter_value("spec.compiled") >= 4);
    assert!(spec_rt.obs().counter_value("spec.rejected") >= 1);
    assert!(spec_rt.obs().counter_value("spec.audit.runs") >= 2);
    assert!(spec_rt.obs().counter_value("spec.audit.non_compliant") >= 1);
    assert!(spec_rt.obs().counter_value("netdb.view.hits") >= 1);

    let update_rt = exercise_update();
    check_contract("update", update_rt.obs(), UPDATE_NAMES);
    assert!(update_rt.obs().counter_value("update.exec.waves") >= 2);
    assert_eq!(update_rt.obs().counter_value("update.verify.violations"), 0);
    assert_eq!(update_rt.obs().counter_value("update.exec.failures"), 0);

    let trace = synthesize(&TraceConfig {
        num_tasks: 300,
        ..TraceConfig::default()
    });
    let cfg = TraceConfig::default();
    let r = run(
        &SimConfig {
            granularity: Granularity::Object,
            policy: Policy::Ldsf,
            scheme: cfg.scheme,
            split_mode: SplitMode::Split,
        },
        &trace,
    );
    check_contract("sim", &r.obs, SIM_NAMES);

    // A short seeded fault campaign: covers the `chaos.*` family plus the
    // retry counters under real (injected) transient faults.
    let mut chaos_cfg = occam_chaos::CampaignConfig::at_rate(7, 0.05);
    chaos_cfg.tasks = 8;
    let chaos = occam_chaos::Campaign::new(chaos_cfg);
    let chaos_reg = chaos.registry().clone();
    let chaos_report = chaos.run();
    assert_eq!(
        chaos_report.invariant_violations, 0,
        "chaos campaign violated the recovery contract: {:?}",
        chaos_report.first_violation
    );
    check_contract("chaos", &chaos_reg, CHAOS_NAMES);

    let mut out = String::from("{\n  \"runtime\": ");
    out.push_str(&runtime.obs().to_json());
    out.push_str(",\n  \"runtime_events\": ");
    out.push_str(&runtime.obs().events().to_json());
    out.push_str(",\n  \"sim\": ");
    out.push_str(&r.obs.to_json());
    out.push_str(",\n  \"gateway\": ");
    out.push_str(&gateway_reg.to_json());
    out.push_str(",\n  \"chaos\": ");
    out.push_str(&chaos_reg.to_json());
    out.push_str(",\n  \"repl\": ");
    out.push_str(&repl_reg.to_json());
    out.push_str(",\n  \"occ\": ");
    out.push_str(&occ_rt.obs().to_json());
    out.push_str(",\n  \"spec\": ");
    out.push_str(&spec_rt.obs().to_json());
    out.push_str(",\n  \"update\": ");
    out.push_str(&update_rt.obs().to_json());
    out.push_str("\n}\n");
    std::fs::write("BENCH_obs.json", &out).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
}
