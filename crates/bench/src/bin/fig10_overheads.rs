//! Figure 10: scheduling overheads at each lock granularity (LDSF).
//!
//! (a) SCHED invocation times — fewer locks schedule faster (DC fastest,
//! device slowest, object in between), all decisions under 100 ms;
//! (b) active scheduling objects over scheduling steps — device locking
//! produces 1-2 orders of magnitude more objects;
//! (c) object-tree maintenance cost — insertion (regex comparisons) costs
//! more than deletion.
//!
//! All wall-clock overheads here come from the shared `occam-obs` registry
//! each run carries (`sched.invocation_ns`, `sim.active_objects`,
//! `objtree.*`); only the sampled per-step series still reads the raw
//! `active_objects` vector.

use occam_objtree::SplitMode;
use occam_sched::Policy;
use occam_sim::{run, Granularity, SimConfig};
use occam_workload::TraceConfig;

fn main() {
    let cfg = TraceConfig::default();
    let trace = occam_workload::synthesize(&cfg);
    let mut results = Vec::new();
    for granularity in [Granularity::Dc, Granularity::Device, Granularity::Object] {
        let r = run(
            &SimConfig {
                granularity,
                policy: Policy::Ldsf,
                scheme: cfg.scheme,
                split_mode: SplitMode::Split,
            },
            &trace,
        );
        results.push((granularity, r));
    }

    println!("## Figure 10a: SCHED invocation time (microseconds)");
    println!("lock\tmean\tp50\tp99\tmax");
    for (g, r) in &results {
        let snap = r
            .obs
            .histogram_snapshot("sched.invocation_ns")
            .expect("scheduler records invocation latency");
        println!(
            "{}\t{:.0}\t{:.0}\t{:.0}\t{:.0}",
            g.name(),
            snap.mean() / 1e3,
            snap.quantile(0.50) as f64 / 1e3,
            snap.quantile(0.99) as f64 / 1e3,
            snap.max as f64 / 1e3,
        );
    }
    println!("# paper bound: all decisions computed under 100ms (100000us)");

    println!();
    println!("## Figure 10b: active scheduling objects per step (sampled)");
    println!("step\tdc\tdev\tobj");
    let steps = results
        .iter()
        .map(|(_, r)| r.active_objects.len())
        .min()
        .unwrap_or(0);
    let stride = (steps / 40).max(1);
    let mut i = 0;
    while i < steps {
        println!(
            "{i}\t{}\t{}\t{}",
            results[0].1.active_objects[i],
            results[1].1.active_objects[i],
            results[2].1.active_objects[i],
        );
        i += stride;
    }
    println!("## peak active objects");
    for (g, r) in &results {
        let peak = r
            .obs
            .histogram_snapshot("sim.active_objects")
            .map_or(0, |s| s.max);
        println!("{}\t{}", g.name(), peak);
    }

    println!();
    println!("## Figure 10c: object-tree maintenance (object granularity)");
    let obs = &results[2].1.obs;
    // Sums are exact nanosecond totals; the per-delete mean divides the
    // time spent in every `release_ref` by the physical removals, matching
    // the original `TreeStats` accounting.
    let per = |ns_sum: u64, n: u64| {
        if n == 0 {
            0.0
        } else {
            ns_sum as f64 / 1e3 / n as f64
        }
    };
    let hist_sum = |name: &str| obs.histogram_snapshot(name).map_or(0, |s| s.sum);
    let inserts = obs.counter_value("objtree.inserts");
    let deletes = obs.counter_value("objtree.deletes");
    println!("op\tcount\tmean_us");
    println!(
        "insert\t{}\t{:.1}",
        inserts,
        per(hist_sum("objtree.insert_ns"), inserts)
    );
    println!(
        "delete\t{}\t{:.1}",
        deletes,
        per(hist_sum("objtree.delete_ns"), deletes)
    );
    println!("splits\t{}\t-", obs.counter_value("objtree.splits"));
    println!("# paper shape: insertion takes longer (regex comparisons)");
}
