//! Figure 10: scheduling overheads at each lock granularity (LDSF).
//!
//! (a) SCHED invocation times — fewer locks schedule faster (DC fastest,
//! device slowest, object in between), all decisions under 100 ms;
//! (b) active scheduling objects over scheduling steps — device locking
//! produces 1-2 orders of magnitude more objects;
//! (c) object-tree maintenance cost — insertion (regex comparisons) costs
//! more than deletion.

use occam_objtree::SplitMode;
use occam_sched::Policy;
use occam_sim::{run, Granularity, SimConfig};
use occam_workload::TraceConfig;
use std::time::Duration;

fn pct(xs: &mut [Duration], p: f64) -> Duration {
    if xs.is_empty() {
        return Duration::ZERO;
    }
    xs.sort();
    xs[((xs.len() - 1) as f64 * p / 100.0).round() as usize]
}

fn main() {
    let cfg = TraceConfig::default();
    let trace = occam_workload::synthesize(&cfg);
    let mut results = Vec::new();
    for granularity in [Granularity::Dc, Granularity::Device, Granularity::Object] {
        let r = run(
            &SimConfig {
                granularity,
                policy: Policy::Ldsf,
                scheme: cfg.scheme,
                split_mode: SplitMode::Split,
            },
            &trace,
        );
        results.push((granularity, r));
    }

    println!("## Figure 10a: SCHED invocation time (microseconds)");
    println!("lock\tmean\tp50\tp99\tmax");
    for (g, r) in &results {
        let mut xs = r.sched_durations.clone();
        println!(
            "{}\t{:.0}\t{:.0}\t{:.0}\t{:.0}",
            g.name(),
            r.mean_sched_time().as_secs_f64() * 1e6,
            pct(&mut xs, 50.0).as_secs_f64() * 1e6,
            pct(&mut xs, 99.0).as_secs_f64() * 1e6,
            r.max_sched_time().as_secs_f64() * 1e6,
        );
    }
    println!("# paper bound: all decisions computed under 100ms (100000us)");

    println!();
    println!("## Figure 10b: active scheduling objects per step (sampled)");
    println!("step\tdc\tdev\tobj");
    let steps = results
        .iter()
        .map(|(_, r)| r.active_objects.len())
        .min()
        .unwrap_or(0);
    let stride = (steps / 40).max(1);
    let mut i = 0;
    while i < steps {
        println!(
            "{i}\t{}\t{}\t{}",
            results[0].1.active_objects[i],
            results[1].1.active_objects[i],
            results[2].1.active_objects[i],
        );
        i += stride;
    }
    println!("## peak active objects");
    for (g, r) in &results {
        println!(
            "{}\t{}",
            g.name(),
            r.active_objects.iter().copied().max().unwrap_or(0)
        );
    }

    println!();
    println!("## Figure 10c: object-tree maintenance (object granularity)");
    let tree = results[2].1.tree_stats.expect("object run has tree stats");
    let per = |total: Duration, n: u64| {
        if n == 0 {
            0.0
        } else {
            total.as_secs_f64() * 1e6 / n as f64
        }
    };
    println!("op\tcount\tmean_us");
    println!(
        "insert\t{}\t{:.1}",
        tree.inserts,
        per(tree.insert_time, tree.inserts)
    );
    println!(
        "delete\t{}\t{:.1}",
        tree.deletes,
        per(tree.delete_time, tree.deletes)
    );
    println!("splits\t{}\t-", tree.splits);
    println!("# paper shape: insertion takes longer (regex comparisons)");
}
