//! Optimistic-vs-pessimistic isolation benchmark for the read-mostly
//! management workload, written to `BENCH_occ.json`.
//!
//! The paper's gateway workload is dominated by audits: read-only tasks
//! scanning device state while occasional maintenance writers hold
//! exclusive locks over the same scope. Under strict 2PL every audit
//! serializes behind the writer's critical section; under
//! [`occam::Isolation::Occ`] audits run lock-free against a frozen
//! snapshot and commit without validation conflicts (a read-only
//! optimistic task serializes at its snapshot). This bench measures that
//! difference directly:
//!
//! - A background **maintenance writer** loops 2PL tasks that take
//!   exclusive locks on `dc01.pod00.*` and hold them for a fixed
//!   emulated device-RPC latency.
//! - The foreground **audit stream** runs read-only status scans over
//!   the same scope, once under [`occam::Isolation::TwoPl`] (shared
//!   locks, blocks behind the writer) and once under
//!   [`occam::Isolation::Occ`] (no locks), on fresh substrates.
//! - The online serializability certifier (DESIGN.md §16) is attached in
//!   **both** modes and fed every footprint; the bench asserts the whole
//!   mixed history is acyclic — the speedup is only admissible if the
//!   optimistic schedule stays serializable.
//!
//! Hard gates (process exits non-zero): OCC audit throughput ≥ 2× the
//! 2PL audit throughput, zero certifier violations in both modes, zero
//! optimistic aborts/fallbacks (audits are read-only), and every task
//! footprint certified.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p occam-bench --bin occ_bench [audits]
//! # default: 400 audits against a 1ms-hold writer
//!
//! cargo run --release -p occam-bench --bin occ_bench -- --smoke
//! # CI smoke: 100 audits, same writer hold and gates
//! ```

use occam::netdb::attrs;
use occam::{Isolation, Runtime, TaskState};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The scope both the writer and the audits touch.
const SCOPE: &str = "dc01.pod00.*";

/// Per-mode measurement.
struct ModeRun {
    audits_per_s: f64,
    wall: Duration,
    writer_commits: u64,
    occ_commits: u64,
    occ_aborts: u64,
    occ_fallbacks: u64,
    validate_p50: u64,
    validate_p99: u64,
    certified: u64,
}

/// Runs `audits` read-only scans under `isolation` on a fresh substrate
/// while a 2PL maintenance writer churns the same scope, holding its
/// exclusive locks for `hold` per task.
fn run_mode(isolation: Isolation, audits: u32, hold: Duration) -> ModeRun {
    let (runtime, _ft) = occam::emulated_deployment(1, 4);
    let cert = Arc::new(occam::cert::Certifier::with_obs(runtime.obs()));
    runtime.attach_certifier(Arc::clone(&cert));

    // Two writer threads keep an exclusive request pending on the scope
    // essentially continuously: while one holds its critical section the
    // other is already queued, so the 2PL audit stream observes the
    // scope locked for the writers' full duty cycle.
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..2)
        .map(|w| {
            let writer_rt = runtime.clone();
            let writer_stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut commits = 0u64;
                let mut gen = 0i64;
                while !writer_stop.load(Ordering::Relaxed) {
                    gen += 1;
                    let report = writer_rt.task(format!("maint.{w}.{gen}")).run(move |ctx| {
                        let net = ctx.network(SCOPE)?;
                        net.set("MAINT_GEN", gen.into())?;
                        // Emulated device-RPC latency inside the
                        // critical section: the interval 2PL audits
                        // must wait out.
                        std::thread::sleep(hold);
                        Ok(())
                    });
                    assert_eq!(report.state, TaskState::Completed);
                    commits += 1;
                }
                commits
            })
        })
        .collect();

    let audit = |rt: &Runtime, i: u32| {
        let report = rt
            .task(format!("audit.{i}"))
            .isolation(isolation)
            .run(|ctx| {
                let net = ctx.network_read(SCOPE)?;
                let statuses = net.get(attrs::DEVICE_STATUS)?;
                assert!(!statuses.is_empty(), "audit scope must see devices");
                Ok(())
            });
        assert_eq!(report.state, TaskState::Completed);
    };

    // Warm-up outside the timed window: compiled scope pattern, shard
    // indexes, and the first writer round.
    audit(&runtime, u32::MAX);
    let started = Instant::now();
    for i in 0..audits {
        audit(&runtime, i);
    }
    let wall = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    let writer_commits: u64 = writers
        .into_iter()
        .map(|w| w.join().expect("writer thread"))
        .sum();

    assert!(
        cert.is_acyclic(),
        "history not serializable: {:?}",
        cert.first_violation()
    );
    assert_eq!(cert.violations(), 0);
    let certified = cert.committed();
    runtime.detach_certifier();

    let obs = runtime.obs();
    let validate = obs.histogram("core.occ.validate_ns");
    ModeRun {
        audits_per_s: f64::from(audits) / wall.as_secs_f64(),
        wall,
        writer_commits,
        occ_commits: obs.counter_value("core.occ.commits"),
        occ_aborts: obs.counter_value("core.occ.aborts"),
        occ_fallbacks: obs.counter_value("core.occ.fallbacks"),
        validate_p50: validate.quantile(0.50),
        validate_p99: validate.quantile(0.99),
        certified,
    }
}

fn mode_json(r: &ModeRun) -> String {
    format!(
        "{{\"audits_per_s\":{:.1},\"wall_ms\":{:.2},\"writer_commits\":{},\
         \"occ_commits\":{},\"occ_aborts\":{},\"occ_fallbacks\":{},\
         \"validate_ns_p50\":{},\"validate_ns_p99\":{},\"certified\":{}}}",
        r.audits_per_s,
        r.wall.as_secs_f64() * 1e3,
        r.writer_commits,
        r.occ_commits,
        r.occ_aborts,
        r.occ_fallbacks,
        r.validate_p50,
        r.validate_p99,
        r.certified
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let audits: u32 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|a| a.parse().expect("audits must be a number"))
        .unwrap_or(if smoke { 100 } else { 400 });
    // The writer's emulated device-RPC latency. Real drain/undrain RPCs
    // sit in the milliseconds; at 1ms the exclusive-lock window dominates
    // the scope's schedule, which is exactly the regime the optimistic
    // path exists for.
    let hold = Duration::from_millis(1);

    let twopl = run_mode(Isolation::TwoPl, audits, hold);
    eprintln!(
        "2pl: {audits} audits in {:.2?} ({:.0}/s) against {} writer commits",
        twopl.wall, twopl.audits_per_s, twopl.writer_commits
    );
    let occ = run_mode(Isolation::Occ { max_retries: 3 }, audits, hold);
    eprintln!(
        "occ: {audits} audits in {:.2?} ({:.0}/s) against {} writer commits, \
         {} occ commits, {} aborts, {} fallbacks",
        occ.wall,
        occ.audits_per_s,
        occ.writer_commits,
        occ.occ_commits,
        occ.occ_aborts,
        occ.occ_fallbacks
    );

    let speedup = occ.audits_per_s / twopl.audits_per_s;
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"occ_bench\",\"smoke\":{smoke},\"audits\":{audits},\
         \"writer_hold_us\":{},\"twopl\":{},\"occ\":{},\"speedup\":{speedup:.2}}}",
        hold.as_micros(),
        mode_json(&twopl),
        mode_json(&occ)
    );
    std::fs::write("BENCH_occ.json", &json).expect("write BENCH_occ.json");
    println!("wrote BENCH_occ.json");

    let mut failed = false;
    if speedup < 2.0 {
        eprintln!("FAIL: OCC read-mostly speedup {speedup:.2}x < 2.0x over 2PL");
        failed = true;
    }
    if occ.occ_commits != u64::from(audits) + 1 {
        eprintln!(
            "FAIL: {} optimistic commits for {} audits (+1 warm-up)",
            occ.occ_commits, audits
        );
        failed = true;
    }
    if occ.occ_aborts != 0 || occ.occ_fallbacks != 0 {
        eprintln!(
            "FAIL: read-only audits conflicted ({} aborts, {} fallbacks)",
            occ.occ_aborts, occ.occ_fallbacks
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "gates passed: {speedup:.2}x OCC speedup, serializable in both modes, \
         zero optimistic aborts"
    );
}
