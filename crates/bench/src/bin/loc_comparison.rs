//! Case studies #4-#6 (paper §8.3): lines of stateful service-invocation
//! code, legacy workflow style vs Occam.
//!
//! Each case study is implemented twice and *executed* both ways against
//! identical deployments (asserting identical end state):
//!
//! - **legacy**: direct service/database invocation with the boilerplate a
//!   raw workflow program needs — manual scope enumeration, ad-hoc
//!   advisory locking against concurrent workflows, per-device calls,
//!   old-value capture and hand-written failure cleanup;
//! - **occam**: the same management logic against the Occam API, where the
//!   runtime supplies those guardrails.
//!
//! LoC is counted from this very source file between `BEGIN`/`END`
//! markers (non-blank, non-comment lines), so the numbers are honest:
//! the counted code is exactly the code that ran.

use occam::emunet::FuncArgs;
use occam::netdb::attrs;
use occam::netdb::AttrValue;
use occam::regex::Pattern;
use occam::TaskState;

type Deployment = (occam::Runtime, occam::topology::FatTree);

fn deploy() -> Deployment {
    occam::emulated_deployment(1, 6)
}

// ---------------------------------------------------------------------
// Case study #4: allocate test IPs, run connectivity tests, deallocate.
// ---------------------------------------------------------------------

fn legacy_cs4(rt: &occam::Runtime) -> Result<(), String> {
    let db = rt.db();
    let svc = rt.service();
    // BEGIN legacy_cs4
    // Resolve the scope by hand.
    let scope = Pattern::from_glob("dc01.pod02.tor*").map_err(|e| e.to_string())?;
    let devices = db.select_devices(&scope).map_err(|e| e.to_string())?;
    if devices.is_empty() {
        return Err("no devices in scope".to_string());
    }
    // Ad-hoc advisory locking so a concurrent run of this workflow does
    // not deallocate our test IPs (the production incident the paper
    // describes). Spin until every device is unclaimed, then claim.
    loop {
        let claims = db.get_attr(&scope, "WF_LOCK").map_err(|e| e.to_string())?;
        if claims.values().all(|v| v.as_str() == Some("")) || claims.is_empty() {
            let mut ok = true;
            for d in &devices {
                let one = Pattern::from_names(&[d.as_str()]).map_err(|e| e.to_string())?;
                if db.set_attr(&one, "WF_LOCK", "cs4".into()).is_err() {
                    ok = false;
                    break;
                }
            }
            if ok {
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    // Allocate test IPs device by device; remember which succeeded so a
    // mid-sequence failure can be cleaned up by hand.
    let mut allocated: Vec<String> = Vec::new();
    let mut failure: Option<String> = None;
    for d in &devices {
        match svc.execute("f_alloc_ip", std::slice::from_ref(d), &FuncArgs::none()) {
            Ok(_) => allocated.push(d.clone()),
            Err(e) => {
                failure = Some(e.to_string());
                break;
            }
        }
    }
    // Run the connectivity test only if allocation fully succeeded.
    if failure.is_none() {
        for d in &devices {
            if let Err(e) = svc.execute("f_ping_test", std::slice::from_ref(d), &FuncArgs::none()) {
                failure = Some(e.to_string());
                break;
            }
        }
    }
    // Deallocate everything we allocated (also the failure path).
    for d in &allocated {
        if let Err(e) = svc.execute("f_dealloc_ip", std::slice::from_ref(d), &FuncArgs::none()) {
            failure.get_or_insert(e.to_string());
        }
    }
    // Release the advisory locks.
    for d in &devices {
        let one = Pattern::from_names(&[d.as_str()]).map_err(|e| e.to_string())?;
        db.set_attr(&one, "WF_LOCK", "".into())
            .map_err(|e| e.to_string())?;
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
    // END legacy_cs4
}

fn occam_cs4(rt: &occam::Runtime) -> TaskState {
    rt.task("cs4_connectivity_test")
        .run(|ctx| {
            // BEGIN occam_cs4
            let tors = ctx.network("dc01.pod02.tor*")?;
            tors.apply("f_alloc_ip")?;
            tors.apply("f_ping_test")?;
            tors.apply("f_dealloc_ip")?;
            tors.close();
            Ok(())
            // END occam_cs4
        })
        .state
}

// ---------------------------------------------------------------------
// Case study #5: check device health, activate links, generate and verify
// configuration (backbone-style workflow).
// ---------------------------------------------------------------------

fn legacy_cs5(rt: &occam::Runtime) -> Result<(), String> {
    let db = rt.db();
    let svc = rt.service();
    // BEGIN legacy_cs5
    let scope = Pattern::from_glob("dc01.pod03.*").map_err(|e| e.to_string())?;
    let devices = db.select_devices(&scope).map_err(|e| e.to_string())?;
    // Health check: every device must be ACTIVE before we proceed; a
    // legacy workflow polls the database and re-reads to be sure the view
    // did not change under it.
    let mut healthy = false;
    for _attempt in 0..3 {
        let statuses = db
            .get_attr(&scope, attrs::DEVICE_STATUS)
            .map_err(|e| e.to_string())?;
        let all_active = devices
            .iter()
            .all(|d| statuses.get(d).and_then(|v| v.as_str()) == Some(attrs::STATUS_ACTIVE));
        if all_active {
            healthy = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    if !healthy {
        return Err("devices not healthy".to_string());
    }
    // Activate every link touching the scope, capturing old values so a
    // failure can be reverted by hand.
    let links = db.links_touching(&scope).map_err(|e| e.to_string())?;
    let old = db
        .get_link_attr(&scope, attrs::LINK_STATUS)
        .map_err(|e| e.to_string())?;
    let mut written: Vec<(String, String)> = Vec::new();
    let mut failure: Option<String> = None;
    for (a, z) in &links {
        match db.set_link_attr(a, z, attrs::LINK_STATUS, attrs::UP.into()) {
            Ok(_) => written.push((a.clone(), z.clone())),
            Err(e) => {
                failure = Some(e.to_string());
                break;
            }
        }
    }
    if let Some(e) = failure {
        // Hand-written rollback of the partial link activation.
        for (a, z) in &written {
            let prev = old
                .get(&(a.clone(), z.clone()))
                .cloned()
                .unwrap_or_else(|| AttrValue::str(attrs::DOWN));
            let _ = db.set_link_attr(a, z, attrs::LINK_STATUS, prev);
        }
        return Err(e);
    }
    // Generate configuration and push it, device by device.
    for d in &devices {
        svc.execute(
            "f_create_config",
            std::slice::from_ref(d),
            &FuncArgs::none(),
        )
        .map_err(|e| e.to_string())?;
        svc.execute("f_push", std::slice::from_ref(d), &FuncArgs::none())
            .map_err(|e| e.to_string())?;
    }
    // Monitor: verify link state stuck.
    let after = db
        .get_link_attr(&scope, attrs::LINK_STATUS)
        .map_err(|e| e.to_string())?;
    if after.values().any(|v| v.as_str() != Some(attrs::UP)) {
        return Err("link activation did not converge".to_string());
    }
    Ok(())
    // END legacy_cs5
}

fn occam_cs5(rt: &occam::Runtime) -> TaskState {
    rt.task("cs5_activate_links")
        .run(|ctx| {
            // BEGIN occam_cs5
            let net = ctx.network("dc01.pod03.*")?;
            let statuses = net.get(attrs::DEVICE_STATUS)?;
            if statuses
                .values()
                .any(|v| v.as_str() != Some(attrs::STATUS_ACTIVE))
            {
                return Err(occam::TaskError::Failed("devices not healthy".into()));
            }
            net.set_links(attrs::LINK_STATUS, attrs::UP.into())?;
            net.apply("f_create_config")?;
            net.apply("f_push")?;
            let after = net.get_links(attrs::LINK_STATUS)?;
            if after.values().any(|v| v.as_str() != Some(attrs::UP)) {
                return Err(occam::TaskError::Failed("did not converge".into()));
            }
            net.close();
            Ok(())
            // END occam_cs5
        })
        .state
}

// ---------------------------------------------------------------------
// Case study #6: change device states, create configurations, deploy.
// ---------------------------------------------------------------------

fn legacy_cs6(rt: &occam::Runtime) -> Result<(), String> {
    let db = rt.db();
    let svc = rt.service();
    // BEGIN legacy_cs6
    let scope = Pattern::from_glob("dc01.pod04.*").map_err(|e| e.to_string())?;
    let devices = db.select_devices(&scope).map_err(|e| e.to_string())?;
    // Capture old state for manual revert.
    let old = db
        .get_attr(&scope, attrs::DEVICE_STATUS)
        .map_err(|e| e.to_string())?;
    let mut changed: Vec<String> = Vec::new();
    let mut failure: Option<String> = None;
    for d in &devices {
        let one = Pattern::from_names(&[d.as_str()]).map_err(|e| e.to_string())?;
        match db.set_attr(
            &one,
            attrs::DEVICE_STATUS,
            attrs::STATUS_UNDER_MAINTENANCE.into(),
        ) {
            Ok(_) => changed.push(d.clone()),
            Err(e) => {
                failure = Some(e.to_string());
                break;
            }
        }
    }
    if failure.is_none() {
        for d in &devices {
            if let Err(e) = svc.execute(
                "f_create_config",
                std::slice::from_ref(d),
                &FuncArgs::none(),
            ) {
                failure = Some(e.to_string());
                break;
            }
            if let Err(e) = svc.execute(
                "f_push",
                std::slice::from_ref(d),
                &FuncArgs::one("admin", "drained"),
            ) {
                failure = Some(e.to_string());
                break;
            }
        }
    }
    if let Some(e) = failure {
        // Hand-written revert of the device-state changes.
        for d in &changed {
            let one = Pattern::from_names(&[d.as_str()]).map_err(|e2| e2.to_string())?;
            let prev = old
                .get(d)
                .cloned()
                .unwrap_or_else(|| AttrValue::str(attrs::STATUS_ACTIVE));
            let _ = db.set_attr(&one, attrs::DEVICE_STATUS, prev);
        }
        return Err(e);
    }
    Ok(())
    // END legacy_cs6
}

fn occam_cs6(rt: &occam::Runtime) -> TaskState {
    rt.task("cs6_deploy_config")
        .run(|ctx| {
            // BEGIN occam_cs6
            let net = ctx.network("dc01.pod04.*")?;
            net.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
            net.apply("f_create_config")?;
            net.apply_with("f_push", &FuncArgs::one("admin", "drained"))?;
            net.close();
            Ok(())
            // END occam_cs6
        })
        .state
}

// ---------------------------------------------------------------------
// LoC counting and the harness.
// ---------------------------------------------------------------------

fn count_loc(marker: &str) -> usize {
    let src = include_str!("loc_comparison.rs");
    let begin = format!("// BEGIN {marker}");
    let end = format!("// END {marker}");
    let mut counting = false;
    let mut n = 0;
    for line in src.lines() {
        let t = line.trim();
        if t == begin {
            counting = true;
            continue;
        }
        if t == end {
            break;
        }
        if counting && !t.is_empty() && !t.starts_with("//") {
            n += 1;
        }
    }
    n
}

fn main() {
    println!("## Case studies 4-6: lines of stateful service-invocation code");
    println!("case\tlegacy\toccam\treduction");
    fn occam_cs4_wrapper(rt: &occam::Runtime) -> Result<(), String> {
        match occam_cs4(rt) {
            TaskState::Completed => Ok(()),
            other => Err(format!("{other:?}")),
        }
    }
    fn occam_cs5_wrapper(rt: &occam::Runtime) -> Result<(), String> {
        match occam_cs5(rt) {
            TaskState::Completed => Ok(()),
            other => Err(format!("{other:?}")),
        }
    }
    fn occam_cs6_wrapper(rt: &occam::Runtime) -> Result<(), String> {
        match occam_cs6(rt) {
            TaskState::Completed => Ok(()),
            other => Err(format!("{other:?}")),
        }
    }
    for (name, legacy, occam_fn) in [
        (
            "cs4",
            legacy_cs4 as fn(&occam::Runtime) -> Result<(), String>,
            occam_cs4_wrapper as fn(&occam::Runtime) -> Result<(), String>,
        ),
        ("cs5", legacy_cs5, occam_cs5_wrapper),
        ("cs6", legacy_cs6, occam_cs6_wrapper),
    ] {
        // Run both implementations on fresh deployments; both must succeed
        // and produce the same database state.
        let (rt_legacy, _) = deploy();
        legacy(&rt_legacy).unwrap_or_else(|e| panic!("{name} legacy failed: {e}"));
        let (rt_occam, _) = deploy();
        occam_fn(&rt_occam).unwrap_or_else(|e| panic!("{name} occam failed: {e}"));
        // Compare end states, ignoring the legacy advisory-lock attribute.
        let mut legacy_snap = rt_legacy.db().snapshot().materialize();
        for dev in legacy_snap.devices.values_mut() {
            dev.attrs.remove("WF_LOCK");
        }
        let occam_snap = rt_occam.db().snapshot();
        assert_eq!(
            legacy_snap, occam_snap,
            "{name}: both implementations end in the same database state"
        );

        let l = count_loc(&format!("legacy_{name}"));
        let o = count_loc(&format!("occam_{name}"));
        println!(
            "{name}\t{l}\t{o}\t{:.0}%",
            100.0 * (1.0 - o as f64 / l as f64)
        );
    }
    println!("# paper: cs4 131->6, cs5 307->11, cs6 311->6 (LoC of stateful service invocation)");
}
