//! Figure 9: scheduling effectiveness on more workloads (LDSF).
//!
//! (a) arrival rate scaled 2x/4x/6x; (b) write-heavy (~95% writes);
//! (c) read-heavy (~95% reads). Paper shapes: object locking reduces mean
//! completion by 4.7-7.1x vs DC locks and 1.7-4.0x vs device locks under
//! scaled arrivals; with read-heavy workloads device- and object-level
//! converge and everything completes faster.

use occam_objtree::SplitMode;
use occam_sched::Policy;
use occam_sim::{run, Granularity, SimConfig, SimResult};
use occam_workload::TraceConfig;

fn simulate(cfg: &TraceConfig) -> [(Granularity, SimResult); 3] {
    let trace = occam_workload::synthesize(cfg);
    [Granularity::Dc, Granularity::Device, Granularity::Object].map(|granularity| {
        let r = run(
            &SimConfig {
                granularity,
                policy: Policy::Ldsf,
                scheme: cfg.scheme,
                split_mode: SplitMode::Split,
            },
            &trace,
        );
        (granularity, r)
    })
}

fn print_block(title: &str, results: &[(Granularity, SimResult); 3]) {
    println!("## {title}");
    println!("lock\tmean\tp50\tp90\tp99\tzero_wait");
    for (g, r) in results {
        println!(
            "{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.3}",
            g.name(),
            r.mean_completion(),
            r.completion_percentile(50.0),
            r.completion_percentile(90.0),
            r.completion_percentile(99.0),
            r.zero_wait_fraction(),
        );
    }
    let dc = results[0].1.mean_completion();
    let dev = results[1].1.mean_completion();
    let obj = results[2].1.mean_completion();
    println!(
        "# obj vs dc: {:.1}x, obj vs dev: {:.1}x",
        dc / obj,
        dev / obj
    );
    println!();
}

fn main() {
    for scale in [2.0, 4.0, 6.0] {
        let cfg = TraceConfig::default().scaled_arrivals(scale);
        let results = simulate(&cfg);
        print_block(
            &format!("Figure 9a: arrival rate x{scale} (completion hours)"),
            &results,
        );
    }
    let results = simulate(&TraceConfig::default().write_heavy());
    print_block(
        "Figure 9b: write-heavy workload (completion hours)",
        &results,
    );
    let results = simulate(&TraceConfig::default().read_heavy());
    print_block(
        "Figure 9c: read-heavy workload (completion hours)",
        &results,
    );
}
