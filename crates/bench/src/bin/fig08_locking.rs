//! Figure 8: scheduling effectiveness of multi-granularity locking.
//!
//! Runs the Meta-shaped 2000-task trace under LDSF at the three lock
//! granularities and prints (a) completion-time statistics and CDF,
//! (b) waiting-time statistics and zero-wait fractions, and (c) the
//! queue-length timeline.
//!
//! Paper shapes to match: average completion DC ≈ 312h > Dev ≈ 129h >
//! Obj ≈ 31h; P90 waiting DC ≈ 1037h while Obj/Dev have ≥91%/94%
//! zero-wait tasks; peak queues Obj 62 < Dev 134 < DC 730.
//!
//! Scalar metrics (invocation counts, zero-wait fractions, peak queues)
//! are read from each run's `occam-obs` registry; the virtual-time CDFs
//! and the queue timeline come from the per-task outcome vectors.

use occam_objtree::SplitMode;
use occam_sched::Policy;
use occam_sim::{run, Granularity, SimConfig, SimResult};
use occam_topology::ProductionScheme;
use occam_workload::{synthesize, TraceConfig};

fn main() {
    let trace_cfg = TraceConfig::default();
    let trace = synthesize(&trace_cfg);
    eprintln!(
        "# fig08: {} tasks over {:.0}h, LDSF, 16 DCs x 96 pods x 92 switches",
        trace.len(),
        trace_cfg.window_hours
    );

    let mut results: Vec<(Granularity, SimResult)> = Vec::new();
    for granularity in [Granularity::Dc, Granularity::Device, Granularity::Object] {
        let t0 = std::time::Instant::now();
        let r = run(
            &SimConfig {
                granularity,
                policy: Policy::Ldsf,
                scheme: ProductionScheme::meta_scale(),
                split_mode: SplitMode::Split,
            },
            &trace,
        );
        eprintln!(
            "# {} simulated in {:.1}s ({} sched invocations, {} deadlocks broken)",
            granularity.name(),
            t0.elapsed().as_secs_f64(),
            r.obs.counter_value("sched.invocations"),
            r.obs.counter_value("sim.deadlocks_broken")
        );
        results.push((granularity, r));
    }

    println!("## Figure 8a: task completion times (hours)");
    println!("lock\tmean\tp50\tp90\tp99\tmax");
    for (g, r) in &results {
        println!(
            "{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            g.name(),
            r.mean_completion(),
            r.completion_percentile(50.0),
            r.completion_percentile(90.0),
            r.completion_percentile(99.0),
            r.completion_percentile(100.0),
        );
    }

    println!();
    println!("## Figure 8a (CDF): completion-time percentiles (hours)");
    println!(
        "pct\t{}",
        results
            .iter()
            .map(|(g, _)| g.name())
            .collect::<Vec<_>>()
            .join("\t")
    );
    for pct in (0..=100).step_by(5) {
        let row: Vec<String> = results
            .iter()
            .map(|(_, r)| format!("{:.1}", r.completion_percentile(pct as f64)))
            .collect();
        println!("{pct}\t{}", row.join("\t"));
    }

    println!();
    println!("## Figure 8b: task waiting times (hours)");
    println!("lock\tmean\tp50\tp90\tp99\tzero_wait_frac");
    for (g, r) in &results {
        // Zero-wait fraction from the registry's lifecycle counters; equal
        // to `r.zero_wait_fraction()` by construction.
        let completed = r.obs.counter_value("sim.tasks.completed");
        let zero_wait = r.obs.counter_value("sim.tasks.zero_wait");
        let zero_frac = if completed == 0 {
            0.0
        } else {
            zero_wait as f64 / completed as f64
        };
        println!(
            "{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.3}",
            g.name(),
            r.mean_waiting(),
            r.waiting_percentile(50.0),
            r.waiting_percentile(90.0),
            r.waiting_percentile(99.0),
            zero_frac,
        );
    }

    println!();
    println!("## Figure 8b (CDF): waiting-time percentiles (hours)");
    println!(
        "pct\t{}",
        results
            .iter()
            .map(|(g, _)| g.name())
            .collect::<Vec<_>>()
            .join("\t")
    );
    for pct in (0..=100).step_by(5) {
        let row: Vec<String> = results
            .iter()
            .map(|(_, r)| format!("{:.1}", r.waiting_percentile(pct as f64)))
            .collect();
        println!("{pct}\t{}", row.join("\t"));
    }

    println!();
    println!("## Figure 8c: queue length over time (sampled each 100h)");
    println!(
        "hours\t{}",
        results
            .iter()
            .map(|(g, _)| g.name())
            .collect::<Vec<_>>()
            .join("\t")
    );
    let horizon = results
        .iter()
        .flat_map(|(_, r)| r.queue_timeline.last().map(|&(t, _)| t))
        .fold(0.0f64, f64::max);
    let mut t = 0.0;
    while t <= horizon {
        let row: Vec<String> = results
            .iter()
            .map(|(_, r)| {
                // Queue length at the last event at or before t.
                let idx = r.queue_timeline.partition_point(|&(ts, _)| ts <= t);
                let q = if idx == 0 {
                    0
                } else {
                    r.queue_timeline[idx - 1].1
                };
                q.to_string()
            })
            .collect();
        println!("{t:.0}\t{}", row.join("\t"));
        t += 100.0;
    }
    println!();
    println!("## peak queue lengths");
    for (g, r) in &results {
        // The histogram's max is exact, so this equals `r.peak_queue()`.
        let peak = r
            .obs
            .histogram_snapshot("sim.queue_depth")
            .map_or(0, |s| s.max);
        println!("{}\t{}", g.name(), peak);
    }
}
