//! Replication benchmark: shipping lag, follower read scale-out, and
//! failover time, written to `BENCH_repl.json`.
//!
//! Three measurements over one in-process replica set (DESIGN.md §14):
//!
//! 1. **Replication lag** — a seeded write stream runs against the
//!    leader while the background shipper fans the WAL out; the
//!    ship-to-apply latency of every replicated batch lands in the
//!    `netdb.repl.lag_ns` histogram, reported here as p50/p99.
//! 2. **Follower read throughput** — scoped reads (snapshot +
//!    `select_devices`, the `status_audit` shape) are timed against each
//!    node *in isolation, sequentially* — this container has one core,
//!    so concurrent timing would just multiplex the same CPU. The
//!    aggregate follower rate models one-replica-per-machine capacity
//!    and must be ≥ 2× the single-node (leader-only) rate — the PR's
//!    acceptance gate, trivially met with ≥ 2 followers because routed
//!    reads are lock-free snapshot reads that never touch the leader.
//! 3. **Failover time** — the leader is killed and the set fails over;
//!    the promotion (longest durable WAL prefix) plus synchronous
//!    survivor catch-up is timed under `netdb.repl.failover_ns`, and the
//!    bench asserts zero lost acknowledged commits.
//!
//! Hard gates (process exits non-zero): zero lost acknowledged commits,
//! full convergence, and aggregate follower reads ≥ 2× single-node.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p occam-bench --bin repl_throughput [writes] [reads]
//! # defaults: 2000 writes, 3000 reads per node, 3 followers
//!
//! cargo run --release -p occam-bench --bin repl_throughput -- --smoke
//! # CI smoke: 300 writes, 500 reads per node, same gates
//! ```

use occam::netdb::{Database, ReplicaConfig, ReplicaSet, StoreSnapshot};
use occam::obs::Registry;
use occam_regex::Pattern;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const FOLLOWERS: usize = 3;
const BARRIER: Duration = Duration::from_secs(60);

/// Times `reads` scoped reads (snapshot + device selection over one pod)
/// against a single node and returns reads/second.
fn read_rate(snapshot: impl Fn() -> StoreSnapshot, scope: &Pattern, reads: u32) -> f64 {
    // Warm-up: fault in the lazily-materialized shard indexes.
    let snap = snapshot();
    let mut sink = snap.select_devices(scope).len();
    let started = Instant::now();
    for _ in 0..reads {
        let snap = snapshot();
        sink += snap.select_devices(scope).len();
    }
    let elapsed = started.elapsed().as_secs_f64();
    assert!(sink > 0, "scoped reads must see devices");
    f64::from(reads) / elapsed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let writes: u32 = positional
        .next()
        .map(|a| a.parse().expect("writes must be a number"))
        .unwrap_or(if smoke { 300 } else { 2000 });
    let reads: u32 = positional
        .next()
        .map(|a| a.parse().expect("reads must be a number"))
        .unwrap_or(if smoke { 500 } else { 3000 });

    let reg = Registry::new();
    let leader_db = Arc::new(Database::with_obs(&reg));
    for i in 0..64 {
        leader_db
            .insert_device(&format!("dc01.pod{:02}.sw{:02}", i % 8, i / 8), vec![])
            .expect("seed device");
    }
    let set = ReplicaSet::start(
        Arc::clone(&leader_db),
        ReplicaConfig {
            followers: FOLLOWERS,
            quorum: 1,
            ..ReplicaConfig::default()
        },
    );

    // 1. Replication lag under a write stream.
    let write_started = Instant::now();
    for i in 0..writes {
        leader_db
            .insert_device(&format!("dc01.pod{:02}.gen{i:05}", i % 8), vec![])
            .expect("bench write");
    }
    let target = leader_db.commits();
    let acked = set.leader().wait_acked(target, BARRIER);
    let write_wall = write_started.elapsed();
    let converged_after_writes = set.wait_converged(BARRIER);
    let lag = reg.histogram("netdb.repl.lag_ns");
    let (lag_p50, lag_p99) = (lag.quantile(0.50), lag.quantile(0.99));
    let write_rate = f64::from(writes) / write_wall.as_secs_f64();
    eprintln!(
        "writes: {writes} in {write_wall:.2?} ({write_rate:.0}/s), acked {acked}/{target}, \
         lag p50 {lag_p50}ns p99 {lag_p99}ns"
    );

    // 2. Read throughput, each node in isolation (see module docs).
    let scope = Pattern::from_glob("dc01.pod03.*").expect("scope");
    let leader_rate = read_rate(|| leader_db.snapshot(), &scope, reads);
    let mut follower_rates = Vec::new();
    for f in set.followers() {
        follower_rates.push(read_rate(|| f.snapshot(), &scope, reads));
    }
    let follower_total: f64 = follower_rates.iter().sum();
    let read_ratio = follower_total / leader_rate;
    eprintln!(
        "reads: leader {leader_rate:.0}/s; followers {:?}/s, total {follower_total:.0}/s \
         ({read_ratio:.2}x single-node)",
        follower_rates.iter().map(|r| *r as u64).collect::<Vec<_>>()
    );

    // 3. Failover: kill the leader, promote, catch survivors up.
    let acked_at_kill = set.leader().acked();
    let mut set = set;
    set.kill_leader();
    let (set, promotion) = set.failover();
    let lost_acked = acked_at_kill.saturating_sub(promotion.promoted_commits);
    let converged_after_failover = set.wait_converged(BARRIER);
    let failover_ns = reg.histogram("netdb.repl.failover_ns").max();
    eprintln!(
        "failover: promoted follower {} at {} commits in {failover_ns}ns \
         ({} survivors caught up, {lost_acked} acked lost)",
        promotion.promoted, promotion.promoted_commits, promotion.caught_up
    );
    set.shutdown();

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"repl_throughput\",\"smoke\":{smoke},\"writes\":{writes},\
         \"reads_per_node\":{reads},\"followers\":{FOLLOWERS},\
         \"write_rate_per_s\":{write_rate:.1},\"lag_ns_p50\":{lag_p50},\"lag_ns_p99\":{lag_p99},\
         \"leader_reads_per_s\":{leader_rate:.1},\"follower_reads_per_s_total\":{follower_total:.1},\
         \"read_ratio\":{read_ratio:.3},\"failover_ns\":{failover_ns},\
         \"promoted\":{},\"promoted_commits\":{},\"lost_acked\":{lost_acked},\
         \"converged\":{}}}",
        promotion.promoted,
        promotion.promoted_commits,
        converged_after_writes && converged_after_failover
    );
    std::fs::write("BENCH_repl.json", &json).expect("write BENCH_repl.json");
    println!("wrote BENCH_repl.json");

    let mut failed = false;
    if acked < target || !converged_after_writes || !converged_after_failover {
        eprintln!("FAIL: replication did not converge");
        failed = true;
    }
    if lost_acked > 0 {
        eprintln!("FAIL: failover lost {lost_acked} acknowledged commits");
        failed = true;
    }
    if read_ratio < 2.0 {
        eprintln!("FAIL: follower read throughput {read_ratio:.2}x < 2.0x single-node");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "gates passed: converged, zero lost acked commits, {read_ratio:.2}x follower read scale-out"
    );
}
