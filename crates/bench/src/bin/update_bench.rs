//! Consistent-update synthesis bench (DESIGN.md §15).
//!
//! Plans one fabric-wide change over a single production-scale fat-tree:
//! a firmware push on every aggregation and core switch plus a
//! database-only generation bump on every ToR. Measures the three
//! planner phases — config diff, counterexample-guided wave synthesis,
//! independent plan verification — and compares the synthesized plan's
//! serial length against the naive one-device-per-wave ordering.
//!
//! Two hard gates (both modes, process exits non-zero otherwise):
//!
//! - independent verification finds **zero** violations in the plan;
//! - the naive ordering needs at least **2×** as many serial waves as
//!   the synthesized plan.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p occam-bench --bin update_bench
//! # full scale: k=82 fat-tree, 146,247 devices (8,405 switches)
//!
//! cargo run --release -p occam-bench --bin update_bench -- --smoke
//! # CI smoke: k=8 fat-tree, same gates
//! ```

use occam::netdb::{attrs, StoreSnapshot, WalRecord};
use occam::regex::Pattern;
use occam::topology::{FatTree, Role};
use occam::update::{diff, Synthesizer, TrafficClass};
use std::fmt::Write as _;
use std::time::Instant;

/// Replays the fabric's switch inventory into a scratch store: every
/// non-host device `ACTIVE` on the baseline firmware.
fn baseline_records(ft: &FatTree) -> Vec<WalRecord> {
    ft.topo
        .devices()
        .filter(|(_, d)| d.role != Role::Host)
        .map(|(_, d)| WalRecord::InsertDevice {
            name: d.name.clone(),
            attrs: vec![
                (attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into()),
                (attrs::FIRMWARE_VERSION.into(), "fw-1.0.0".into()),
            ],
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let k: u32 = if smoke { 8 } else { 82 };
    let ft = FatTree::build(1, k).expect("valid fat-tree arity");
    let devices = ft.topo.devices().count();
    let switches = ft
        .topo
        .devices()
        .filter(|(_, d)| d.role != Role::Host)
        .count();
    eprintln!("fat-tree k={k}: {devices} devices, {switches} switches");

    // Current config, and the target: new firmware on every agg and
    // core, a database-only generation bump on every ToR.
    let base = baseline_records(&ft);
    let old = StoreSnapshot::replay(&base);
    let agg_scope = Pattern::from_glob("dc01.pod*.agg*").expect("glob");
    let core_scope = Pattern::from_glob("dc01.core.*").expect("glob");
    let mut records = base.clone();
    let fw_targets: Vec<String> = old
        .select_devices(&agg_scope)
        .into_iter()
        .chain(old.select_devices(&core_scope))
        .collect();
    for name in fw_targets {
        records.push(WalRecord::SetDeviceAttr {
            name: name.clone(),
            attr: attrs::FIRMWARE_VERSION.into(),
            value: "fw-2.0.0".into(),
        });
        records.push(WalRecord::SetDeviceAttr {
            name: name.clone(),
            attr: attrs::FIRMWARE_BINARY.into(),
            value: "img-fw-2.0.0".into(),
        });
        records.push(WalRecord::SetDeviceAttr {
            name,
            attr: "CONFIG_VERSION".into(),
            value: "g2".into(),
        });
    }
    let tor_scope = Pattern::from_glob("dc01.pod*.tor*").expect("glob");
    for name in old.select_devices(&tor_scope) {
        records.push(WalRecord::SetDeviceAttr {
            name,
            attr: "MGMT_GENERATION".into(),
            value: "g2".into(),
        });
    }
    let target = StoreSnapshot::replay(&records);

    let started = Instant::now();
    let ops = diff(&old, &target);
    let diff_ms = started.elapsed().as_secs_f64() * 1e3;
    let naive_waves = ops.len();
    eprintln!("diff: {naive_waves} ops in {diff_ms:.1} ms");

    // Cross-pod traffic classes pin ECMP paths through the upgraded
    // aggs and cores, so the planner must stagger the drains.
    let pods = ft.aggs.len();
    let classes: Vec<TrafficClass> = (0..pods.min(8))
        .map(|p| {
            let q = (p + 1) % pods;
            TrafficClass::pair(
                format!("pod{p}-pod{q}"),
                ft.hosts[p][0][0],
                ft.hosts[q][1][0],
                p as u64,
            )
        })
        .collect();

    let synth = Synthesizer::new(&ft.topo, &classes).with_seed(42);
    let started = Instant::now();
    let (plan, stats) = synth.synthesize_with_stats(&ops).expect("feasible plan");
    let synth_ms = started.elapsed().as_secs_f64() * 1e3;
    let started = Instant::now();
    let violations = synth.verify(&plan);
    let verify_ms = started.elapsed().as_secs_f64() * 1e3;
    let reduction = naive_waves as f64 / plan.serial_len().max(1) as f64;
    eprintln!(
        "synthesized {} waves for {} ops in {synth_ms:.1} ms \
         ({} checks, {} splits, {} barriers); verified in {verify_ms:.1} ms, \
         {} violations; naive ordering {naive_waves} waves ({reduction:.0}x reduction)",
        plan.serial_len(),
        stats.ops,
        stats.checks,
        stats.splits,
        stats.barriers,
        violations.len(),
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"update_bench\",\"smoke\":{smoke},\"k\":{k},\
         \"devices\":{devices},\"switches\":{switches},\
         \"classes\":{},\"ops\":{},\"synth_waves\":{},\"naive_waves\":{naive_waves},\
         \"wave_reduction\":{reduction:.2},\"checks\":{},\"splits\":{},\
         \"barriers\":{},\"counterexamples\":{},\"diff_ms\":{diff_ms:.3},\
         \"synth_ms\":{synth_ms:.3},\"verify_ms\":{verify_ms:.3},\
         \"verify_violations\":{}}}",
        classes.len(),
        stats.ops,
        plan.serial_len(),
        stats.checks,
        stats.splits,
        stats.barriers,
        stats.counterexamples,
        violations.len(),
    );
    std::fs::write("BENCH_update.json", &json).expect("write BENCH_update.json");
    println!("wrote BENCH_update.json");

    if !violations.is_empty() {
        eprintln!("FAIL: synthesized plan failed verification: {violations:?}");
        std::process::exit(1);
    }
    if naive_waves < 2 * plan.serial_len() {
        eprintln!(
            "FAIL: expected >=2x fewer serial waves than naive ({} vs {naive_waves})",
            plan.serial_len()
        );
        std::process::exit(1);
    }
    println!("gates hold: zero violations, {reduction:.0}x fewer serial waves than naive ordering");
}
