//! Production-scale netdb benchmark: scoped-read throughput against the
//! sharded copy-on-write store with 0/1/4 concurrent writers, snapshot
//! latency vs. the deep-clone (materialize) baseline, and a
//! sharded-vs-naive replay equivalence gate. Writes `BENCH_netdb.json`.
//!
//! Full mode builds the paper's production simulation scale — 16 DCs ×
//! 96 pods × 92 switches ≈ 141k devices. `--smoke` runs a scaled-down
//! sweep and exits nonzero if the sharded replay diverges from the naive
//! replay, if a snapshot fails its self-check, or if snapshots are not
//! at least 10× faster than materializing — the CI regression gate for
//! the storage layer.
//!
//! Usage: `cargo run --release -p occam-bench --bin db_throughput [--smoke]`

use occam_netdb::{AttrValue, Database, Store, StoreSnapshot, WriteOp};
use occam_obs::Registry;
use occam_regex::Pattern;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Scale {
    dcs: u32,
    pods: u32,
    switches: u32,
    read_millis: u64,
    snap_iters: u32,
}

const FULL: Scale = Scale {
    dcs: 16,
    pods: 96,
    switches: 92,
    read_millis: 1000,
    snap_iters: 2000,
};

const SMOKE: Scale = Scale {
    dcs: 2,
    pods: 8,
    switches: 12,
    read_millis: 120,
    snap_iters: 400,
};

/// Builds the deployment: one insert batch per pod.
fn seed(db: &Database, s: &Scale) -> usize {
    let mut n = 0;
    for dc in 0..s.dcs {
        for pod in 0..s.pods {
            let ops: Vec<WriteOp> = (0..s.switches)
                .map(|sw| WriteOp::InsertDevice {
                    name: format!("dc{:02}.pod{pod:02}.sw{sw:02}", dc + 1),
                    attrs: vec![
                        ("DEVICE_STATUS".into(), "ACTIVE".into()),
                        ("FIRMWARE_VERSION".into(), "fw-1.0.0".into()),
                    ],
                })
                .collect();
            n += ops.len();
            db.batch(&ops).expect("seed batch");
        }
    }
    n
}

/// Runs pod-scoped reads from one thread for `millis` while `writers`
/// threads commit scoped writes; returns (reads, read_secs, writes).
fn read_sweep(db: &Arc<Database>, s: &Scale, writers: usize) -> (u64, f64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let writes = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for w in 0..writers {
        let db = Arc::clone(db);
        let stop = Arc::clone(&stop);
        let writes = Arc::clone(&writes);
        // Each writer walks its own stride of pods in dc01; scope
        // patterns are compiled once so the loop measures commit cost.
        let scopes: Vec<Pattern> = (0..s.pods)
            .filter(|p| p % writers as u32 == w as u32)
            .map(|p| Pattern::from_glob(&format!("dc01.pod{p:02}.*")).unwrap())
            .collect();
        handles.push(std::thread::spawn(move || {
            let mut i = 0usize;
            let mut v = 0i64;
            while !stop.load(Ordering::Relaxed) {
                let scope = &scopes[i % scopes.len()];
                db.set_attr(scope, "SWEEP", AttrValue::Int(v)).unwrap();
                writes.fetch_add(1, Ordering::Relaxed);
                i += 1;
                v += 1;
            }
        }));
    }
    // Reader: scoped select + attr fetch across pods in a different dc
    // (dc02 when it exists) so reads and writes hit disjoint shards the
    // way production scoping does, while *some* pods collide (dc01 when
    // dcs == 1 in degenerate configs).
    let read_dc = if s.dcs > 1 { 2 } else { 1 };
    let read_scopes: Vec<Pattern> = (0..s.pods)
        .map(|p| Pattern::from_glob(&format!("dc{read_dc:02}.pod{p:02}.*")).unwrap())
        .collect();
    let t0 = Instant::now();
    let mut reads = 0u64;
    let mut pod = 0usize;
    let deadline = std::time::Duration::from_millis(s.read_millis);
    while t0.elapsed() < deadline {
        let scope = &read_scopes[pod % read_scopes.len()];
        let names = db.select_devices(scope).unwrap();
        assert_eq!(names.len(), s.switches as usize, "scoped read lost rows");
        let attrs = db.get_attr(scope, "DEVICE_STATUS").unwrap();
        assert_eq!(attrs.len(), s.switches as usize);
        reads += 1;
        pod += 1;
    }
    let secs = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    (reads, secs, writes.load(Ordering::Relaxed))
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let s = if smoke { SMOKE } else { FULL };

    let reg = Registry::new();
    let db = Arc::new(Database::with_obs(&reg));
    let t0 = Instant::now();
    let devices = seed(&db, &s);
    let seed_secs = t0.elapsed().as_secs_f64();
    eprintln!("seeded {devices} devices in {seed_secs:.2}s");

    // Snapshot latency: O(1) Arc bump vs. the deep-clone baseline.
    let t0 = Instant::now();
    let mut last = db.snapshot();
    for _ in 1..s.snap_iters {
        last = db.snapshot();
    }
    let snap_ns = t0.elapsed().as_nanos() as f64 / f64::from(s.snap_iters);
    let clone_iters = if smoke { 5 } else { 3 };
    let t0 = Instant::now();
    let mut flat = last.materialize();
    for _ in 1..clone_iters {
        flat = last.materialize();
    }
    let clone_ns = t0.elapsed().as_nanos() as f64 / f64::from(clone_iters);
    let speedup = clone_ns / snap_ns;
    eprintln!(
        "snapshot {snap_ns:.0}ns vs deep-clone {clone_ns:.0}ns ({speedup:.0}x), {} devices",
        flat.devices.len()
    );

    // Read throughput with 0 / 1 / 4 concurrent writers.
    let mut sweeps = Vec::new();
    for writers in [0usize, 1, 4] {
        let (reads, secs, writes) = read_sweep(&db, &s, writers);
        let rps = reads as f64 / secs;
        eprintln!("writers={writers}: {rps:.0} scoped reads/s ({writes} commits alongside)");
        sweeps.push((writers, reads, secs, writes));
    }

    // Equivalence gate: sharded replay == naive replay == live state, and
    // the shard invariants hold. Any divergence is a hard failure.
    let records = db.wal_records();
    let sharded = StoreSnapshot::replay(&records);
    let naive = Store::replay(&records);
    let live = db.snapshot();
    let mut gate_failures = Vec::new();
    if sharded != naive {
        gate_failures.push("sharded replay diverged from naive replay");
    }
    if live != sharded {
        gate_failures.push("live state diverged from WAL replay");
    }
    if let Err(e) = live.self_check() {
        eprintln!("self-check: {e}");
        gate_failures.push("snapshot failed self-check");
    }
    if speedup < 10.0 {
        gate_failures.push("snapshot under 10x faster than deep-clone baseline");
    }

    let snap_hist = reg.histogram_snapshot("netdb.snapshot_ns");
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(out, "  \"devices\": {devices},");
    let _ = writeln!(out, "  \"seed_seconds\": {seed_secs:.3},");
    let _ = writeln!(out, "  \"snapshot\": {{");
    let _ = writeln!(out, "    \"mean_ns\": {snap_ns:.0},");
    if let Some(h) = &snap_hist {
        let _ = writeln!(out, "    \"obs_count\": {},", h.count);
        let _ = writeln!(out, "    \"obs_p50_ns\": {},", h.quantile(0.5));
        let _ = writeln!(out, "    \"obs_p99_ns\": {},", h.quantile(0.99));
    }
    let _ = writeln!(out, "    \"deep_clone_ns\": {clone_ns:.0},");
    let _ = writeln!(out, "    \"speedup\": {speedup:.1}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"read_sweeps\": [");
    for (i, (writers, reads, secs, writes)) in sweeps.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"writers\": {writers},");
        let _ = writeln!(out, "      \"scoped_reads\": {reads},");
        let _ = writeln!(out, "      \"seconds\": {secs:.3},");
        let _ = writeln!(out, "      \"reads_per_sec\": {:.0},", *reads as f64 / secs);
        let _ = writeln!(out, "      \"concurrent_commits\": {writes}");
        let _ = writeln!(out, "    }}{}", if i + 1 < sweeps.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"shard_commits\": {},",
        reg.counter_value("netdb.shard.commits")
    );
    let _ = writeln!(
        out,
        "  \"lock_free_reads\": {},",
        reg.counter_value("netdb.shard.read_lock_free")
    );
    let _ = writeln!(out, "  \"wal_records\": {},", records.len());
    let _ = writeln!(out, "  \"gate_failures\": {}", gate_failures.len());
    out.push_str("}\n");
    std::fs::write("BENCH_netdb.json", &out).expect("write BENCH_netdb.json");
    println!("wrote BENCH_netdb.json");

    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("GATE FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
