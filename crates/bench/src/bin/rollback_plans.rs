//! Tables 1-2 / §8.2 "Rollback plan generation": inject a failure at every
//! step of the firmware-upgrade task, print the typed log and the suggested
//! plan, execute the plan, and verify database + device recovery.

use occam::emunet::FuncArgs;
use occam::netdb::attrs;
use occam::rollback::render_log;
use occam::{execute_rollback, TaskResult, TaskState};

const TARGET: &str = "dc01.pod01.tor00";

fn upgrade(ctx: &occam::TaskCtx) -> TaskResult<()> {
    let net = ctx.network(TARGET)?;
    net.apply("f_drain")?;
    net.set(attrs::FIRMWARE_VERSION, "fw-2.1.0".into())?;
    net.set(attrs::FIRMWARE_BINARY, "s3://fw/2.1.0.bin".into())?;
    net.apply_with("f_push", &FuncArgs::one("admin", "drained"))?;
    net.apply("f_alloc_ip")?;
    net.apply("f_ping_test")?;
    net.apply("f_optic_test")?;
    net.apply("f_dealloc_ip")?;
    net.apply("f_undrain")?;
    Ok(())
}

fn main() {
    println!("## Rollback plan generation: firmware upgrade, one failure per step");
    println!();
    let steps = [
        "f_drain",
        "f_push",
        "f_alloc_ip",
        "f_ping_test",
        "f_optic_test",
        "f_dealloc_ip",
        "f_undrain",
    ];
    let mut all_recovered = true;
    for func in steps {
        let (rt, _ft) = occam::emulated_deployment(1, 6);
        let svc = occam::emu_service(&rt);
        let before = rt.db().snapshot();
        svc.library().fail_at(func, 0);
        let report = rt.task("firmware_upgrade").run(upgrade);
        assert_eq!(report.state, TaskState::Aborted);
        svc.library().clear_faults();
        println!("### failure injected at {func}");
        println!("log:  {}", render_log(&report.log));
        let plan = report.rollback.as_ref().expect("plan");
        println!(
            "plan: {}",
            if plan.is_empty() {
                "(nothing to undo)".to_string()
            } else {
                plan.arrow_notation()
            }
        );
        let n = execute_rollback(&report, rt.db(), svc).unwrap();
        let db_ok = rt.db().snapshot() == before;
        let dev_ok = {
            let net = svc.net();
            let guard = net.lock();
            let id = guard.device_by_name(TARGET).unwrap();
            let sw = guard.switch(id).unwrap();
            !sw.drained && sw.test_ip.is_none()
        };
        all_recovered &= db_ok && dev_ok;
        println!("executed {n} steps; database restored: {db_ok}; device clean: {dev_ok}");
        println!();
    }
    // And the no-failure control: the task completes, nothing to roll back.
    let (rt, _ft) = occam::emulated_deployment(1, 6);
    let report = rt.task("firmware_upgrade").run(upgrade);
    assert_eq!(report.state, TaskState::Completed);
    println!("### control (no injected failure)");
    println!("log:  {}", render_log(&report.log));
    println!("task completed; no rollback plan needed");
    assert!(all_recovered, "every failure point recovered");
}
