//! Ablations of Occam's design choices (DESIGN.md §7):
//!
//! 1. **SPLIT vs coarsen** — disable the object tree's SPLIT and coarsen
//!    overlapping regions to their union instead. Over-locking serializes
//!    tasks that Occam would run concurrently; measured on the skewed
//!    trace where overlaps are frequent.
//! 2. **LDSF vs FIFO** — the scheduling-policy ablation (also Figure 11).
//! 3. **Regex/FSM cache** — the paper's §7 caching of compiled scopes:
//!    compare a working cache against a thrashing one on the scope mix the
//!    simulator compiles.

use occam_objtree::SplitMode;
use occam_regex::PatternCache;
use occam_sched::Policy;
use occam_sim::{run, Granularity, SimConfig};
use occam_workload::{synthesize, TraceConfig};

fn main() {
    println!("## Ablation 1: object-tree SPLIT vs coarsen (LDSF, object locks)");
    println!("# SPLIT trades atomic batch-granting for precision: it wins when");
    println!("# overlaps are incidental (over-locking would serialize unrelated");
    println!("# tasks); under extreme hot-spot contention, coarsening's");
    println!("# single-object grants avoid partial-hold convoys instead.");
    println!("trace\tmode\tmean_completion\tmean_wait\tpeak_queue\tsplits");
    for (trace_name, cfg) in [
        ("meta", TraceConfig::default()),
        ("skewed", TraceConfig::default().skewed()),
    ] {
        let trace = synthesize(&cfg);
        for (name, split_mode) in [("split", SplitMode::Split), ("coarsen", SplitMode::Coarsen)] {
            let r = run(
                &SimConfig {
                    granularity: Granularity::Object,
                    policy: Policy::Ldsf,
                    scheme: cfg.scheme,
                    split_mode,
                },
                &trace,
            );
            println!(
                "{trace_name}\t{name}\t{:.1}\t{:.1}\t{}\t{}",
                r.mean_completion(),
                r.mean_waiting(),
                r.peak_queue(),
                r.tree_stats.map(|t| t.splits).unwrap_or(0),
            );
        }
    }
    let cfg = TraceConfig::default().skewed();
    let trace = synthesize(&cfg);

    println!();
    println!("## Ablation 2: scheduling policy (same trace, object locks)");
    println!("policy\tmean_completion\tmean_wait");
    for policy in [Policy::Fifo, Policy::Ldsf] {
        let r = run(
            &SimConfig {
                granularity: Granularity::Object,
                policy,
                scheme: cfg.scheme,
                split_mode: SplitMode::Split,
            },
            &trace,
        );
        println!(
            "{policy:?}\t{:.1}\t{:.1}",
            r.mean_completion(),
            r.mean_waiting()
        );
    }

    println!();
    println!("## Ablation 3: regex/FSM cache on the trace's scope mix");
    let scopes: Vec<String> = trace
        .iter()
        .map(|t| t.region.to_regex(&cfg.scheme))
        .collect();
    let warm = PatternCache::new(4096);
    let t0 = std::time::Instant::now();
    for s in &scopes {
        warm.get(s).unwrap();
    }
    let warm_time = t0.elapsed();
    let cold = PatternCache::new(1); // thrashes: every lookup recompiles
    let t0 = std::time::Instant::now();
    for s in &scopes {
        cold.get(s).unwrap();
    }
    let cold_time = t0.elapsed();
    println!("cache\tcompile_time_ms\thit_ratio");
    println!(
        "enabled\t{:.1}\t{:.3}",
        warm_time.as_secs_f64() * 1e3,
        warm.stats().hit_ratio()
    );
    println!(
        "disabled\t{:.1}\t{:.3}",
        cold_time.as_secs_f64() * 1e3,
        cold.stats().hit_ratio()
    );
    println!(
        "# cache speedup on scope compilation: {:.1}x",
        cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9)
    );
}
