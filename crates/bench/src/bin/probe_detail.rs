//! Developer probe: per-scope-kind completion breakdown (not an experiment).
use occam_sched::Policy;
use occam_sim::{run, Granularity, SimConfig};
use occam_topology::{ProductionScheme, RegionSpec};
use occam_workload::{synthesize, TraceConfig};

fn main() {
    let trace = synthesize(&TraceConfig::default());
    for granularity in [Granularity::Dc, Granularity::Device, Granularity::Object] {
        let r = run(
            &SimConfig::new(granularity, Policy::Ldsf, ProductionScheme::meta_scale()),
            &trace,
        );
        let mut agg: std::collections::BTreeMap<(&str, bool), (f64, f64, usize)> =
            Default::default();
        for o in &r.outcomes {
            let t = &trace[o.id as usize];
            let kind = match t.region {
                RegionSpec::Devices(_) => "devset",
                RegionSpec::Pod { .. } => "pod",
                RegionSpec::PodRange { .. } => "podrange",
                RegionSpec::Dc(_) => "dc",
            };
            let e = agg.entry((kind, t.write)).or_insert((0.0, 0.0, 0));
            e.0 += o.completion_time();
            e.1 += o.waiting();
            e.2 += 1;
        }
        println!(
            "== {} (deadlocks={})",
            granularity.name(),
            r.deadlocks_broken
        );
        for ((k, w), (ct, wt, n)) in agg {
            println!(
                "  {k}/{} n={n} mean_completion={:.1} mean_wait={:.1}",
                if w { "W" } else { "R" },
                ct / n as f64,
                wt / n as f64
            );
        }
    }
}
