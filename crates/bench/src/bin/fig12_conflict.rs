//! Figure 12: traffic rates and device state during conflicting
//! `upgrade_data_plane` and `turn_up_links` tasks, with and without
//! locking (emulation case study #1, k=6 Fat-tree).
//!
//! Without locks, the turn-up task's config push restores traffic through
//! the switch mid-upgrade and user traffic is dropped; with Occam's
//! locking the tasks serialize and the rate never collapses to a
//! black-hole.

use occam::emunet::{Delivery, DeviceService, FlowClass, FuncArgs};
use occam::netdb::attrs;

struct Timeline {
    /// Per tick: delivered rate of the user flow.
    rate: Vec<f64>,
    /// Per tick: was the flow black-holed?
    black_holed: Vec<bool>,
}

fn scenario(with_locks: bool) -> Timeline {
    let (runtime, ft) = occam::emulated_deployment(1, 6);
    let svc = occam::emu_service(&runtime);
    let target = "dc01.pod00.agg00".to_string();
    let flow = {
        let net = svc.net();
        let mut guard = net.lock();
        for &agg in &ft.aggs[0][1..] {
            guard.switch_mut(agg).unwrap().drained = true;
        }
        guard.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[3][0][0],
            100.0,
            FlowClass::Background,
        )
    };
    svc.advance(3); // steady state before the tasks

    if with_locks {
        let rt1 = runtime.clone();
        let t = target.clone();
        let h1 = rt1.task("upgrade_data_plane").spawn(move |ctx| {
            let net = ctx.network(&t)?;
            net.apply("f_drain")?;
            ctx.runtime().service().advance(2);
            net.apply_with("f_upgrade_data_plane", &FuncArgs::one("phase", "begin"))?;
            ctx.runtime().service().advance(5);
            std::thread::sleep(std::time::Duration::from_millis(120));
            net.apply_with("f_upgrade_data_plane", &FuncArgs::one("phase", "commit"))?;
            ctx.runtime().service().advance(2);
            net.apply("f_undrain")?;
            Ok(())
        });
        std::thread::sleep(std::time::Duration::from_millis(40));
        let rt2 = runtime.clone();
        let t = target.clone();
        let h2 = rt2.task("turn_up_links").spawn(move |ctx| {
            let net = ctx.network(&t)?;
            net.set_links(attrs::LINK_STATUS, attrs::UP.into())?;
            net.apply("f_turnup_link")?;
            net.apply("f_push")?;
            ctx.runtime().service().advance(2);
            Ok(())
        });
        h1.join().unwrap();
        h2.join().unwrap();
    } else {
        let devices = vec![target];
        svc.execute("f_drain", &devices, &FuncArgs::none()).unwrap();
        svc.advance(2);
        svc.execute(
            "f_upgrade_data_plane",
            &devices,
            &FuncArgs::one("phase", "begin"),
        )
        .unwrap();
        svc.advance(3);
        // turn_up_links interleaves here, overwriting the drain.
        svc.execute("f_turnup_link", &devices, &FuncArgs::none())
            .unwrap();
        svc.execute("f_push", &devices, &FuncArgs::none()).unwrap();
        svc.advance(4);
        svc.execute(
            "f_upgrade_data_plane",
            &devices,
            &FuncArgs::one("phase", "commit"),
        )
        .unwrap();
        svc.advance(2);
        svc.execute("f_undrain", &devices, &FuncArgs::none())
            .unwrap();
    }
    svc.advance(4);

    let net = svc.net();
    let guard = net.lock();
    let mut rate = Vec::new();
    let mut black_holed = Vec::new();
    for s in guard.history() {
        let (d, r) = s
            .flow_rate
            .get(&flow)
            .copied()
            .unwrap_or((Delivery::NoPath, 0.0));
        rate.push(r);
        black_holed.push(d == Delivery::BlackHoled);
    }
    Timeline { rate, black_holed }
}

fn main() {
    let without = scenario(false);
    let with = scenario(true);

    println!("## Figure 12: user traffic rate (Mbps) per tick");
    println!("tick\tno_locking\tblack_holed\twith_locking\tblack_holed");
    let ticks = without.rate.len().max(with.rate.len());
    for t in 0..ticks {
        println!(
            "{t}\t{:.0}\t{}\t{:.0}\t{}",
            without.rate.get(t).copied().unwrap_or(0.0),
            without.black_holed.get(t).map(|b| *b as u8).unwrap_or(0),
            with.rate.get(t).copied().unwrap_or(0.0),
            with.black_holed.get(t).map(|b| *b as u8).unwrap_or(0),
        );
    }
    let dropped_without = without.black_holed.iter().filter(|&&b| b).count();
    let dropped_with = with.black_holed.iter().filter(|&&b| b).count();
    println!();
    println!("# ticks with black-holed user traffic: without locking = {dropped_without}, with locking = {dropped_with}");
    assert!(dropped_without > 0);
    assert_eq!(dropped_with, 0);
}
