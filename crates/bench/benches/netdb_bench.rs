//! Criterion micro-benchmarks for the source-of-truth database: scoped
//! selects and writes (what every Occam `get`/`set` costs) and WAL replay.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use occam_netdb::{Database, Store};
use occam_regex::Pattern;
use std::hint::black_box;

fn seeded(pods: u32, switches: u32) -> Database {
    let db = Database::new();
    for p in 0..pods {
        for s in 0..switches {
            db.insert_device(
                &format!("dc01.pod{p:02}.sw{s:02}"),
                vec![("DEVICE_STATUS".into(), "ACTIVE".into())],
            )
            .unwrap();
        }
    }
    db
}

fn bench_queries(c: &mut Criterion) {
    let db = seeded(24, 48);
    let pod = Pattern::from_glob("dc01.pod03.*").unwrap();
    c.bench_function("netdb/select_pod_of_1152", |b| {
        b.iter(|| db.select_devices(black_box(&pod)).unwrap())
    });
    c.bench_function("netdb/get_attr_pod", |b| {
        b.iter(|| db.get_attr(black_box(&pod), "DEVICE_STATUS").unwrap())
    });
    c.bench_function("netdb/set_attr_pod", |b| {
        b.iter(|| db.set_attr(black_box(&pod), "X", 1i64.into()).unwrap())
    });
    c.bench_function("netdb/snapshot_1152_devices", |b| {
        b.iter(|| black_box(db.snapshot()))
    });
}

fn bench_wal_replay(c: &mut Criterion) {
    c.bench_function("netdb/wal_replay_1000_writes", |b| {
        let db = seeded(4, 16);
        let pod = Pattern::from_glob("dc01.pod0[0-3].*").unwrap();
        for i in 0..16 {
            db.set_attr(&pod, "X", i.into()).unwrap();
        }
        let records = db.wal_records();
        b.iter_batched(
            || records.clone(),
            |r| black_box(Store::replay(&r)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_queries, bench_wal_replay);
criterion_main!(benches);
