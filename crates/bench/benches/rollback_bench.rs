//! Criterion micro-benchmarks for rollback-plan generation: grammar
//! parsing and tree-walk reversal over logs of growing length.

use criterion::{criterion_group, criterion_main, Criterion};
use occam_rollback::{parse_log, rollback_plan, LogEntry, OpType};
use std::hint::black_box;

fn firmware_log(repeats: usize) -> Vec<LogEntry> {
    let mut log = Vec::new();
    for _ in 0..repeats {
        for t in [
            OpType::Drain,
            OpType::DbChange,
            OpType::DbChange,
            OpType::PushCfg,
            OpType::Prepare,
            OpType::Test,
            OpType::Test,
            OpType::Unprepare,
            OpType::Undrain,
        ] {
            log.push(LogEntry::ok(t, t.name().to_lowercase()));
        }
    }
    // Truncate mid-testing to exercise the failure patterns.
    log.truncate(log.len().saturating_sub(2));
    log
}

fn bench_parse_and_plan(c: &mut Criterion) {
    for repeats in [1usize, 8, 64] {
        let log = firmware_log(repeats);
        c.bench_function(&format!("rollback/parse_{}_entries", log.len()), |b| {
            b.iter(|| parse_log(black_box(&log)).unwrap())
        });
        let tree = parse_log(&log).unwrap();
        c.bench_function(&format!("rollback/plan_{}_entries", log.len()), |b| {
            b.iter(|| rollback_plan(black_box(&tree)))
        });
    }
}

criterion_group!(benches, bench_parse_and_plan);
criterion_main!(benches);
