//! Criterion micro-benchmarks for the regex/automata engine: the costs
//! behind object-tree maintenance (Figure 10c's "insertion takes longer
//! because of regex comparison").

use criterion::{criterion_group, criterion_main, Criterion};
use occam_regex::{dfa_to_regex, Pattern, PatternCache};
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    c.bench_function("regex/compile_pod_scope", |b| {
        b.iter(|| Pattern::new(black_box(r"dc01\.pod0[0-9]\..*")).unwrap())
    });
    c.bench_function("regex/compile_device_list", |b| {
        let names: Vec<String> = (0..16).map(|i| format!("dc01.pod03.sw{i:02}")).collect();
        b.iter(|| Pattern::from_names(black_box(&names)).unwrap())
    });
}

fn bench_algebra(c: &mut Criterion) {
    let dc = Pattern::from_glob("dc01.*").unwrap();
    let pod = Pattern::from_glob("dc01.pod03.*").unwrap();
    let range = Pattern::new(r"dc01\.pod0[2-6]\..*").unwrap();
    c.bench_function("regex/contains", |b| {
        b.iter(|| black_box(&dc).contains(black_box(&pod)))
    });
    c.bench_function("regex/overlaps", |b| {
        b.iter(|| black_box(&pod).overlaps(black_box(&range)))
    });
    c.bench_function("regex/intersect", |b| {
        b.iter(|| black_box(&range).intersect(black_box(&pod)))
    });
    c.bench_function("regex/subtract", |b| {
        b.iter(|| black_box(&range).subtract(black_box(&pod)))
    });
    c.bench_function("regex/to_regex_after_subtract", |b| {
        let diff = range.subtract(&pod);
        b.iter(|| dfa_to_regex(black_box(diff.dfa())))
    });
    c.bench_function("regex/matches", |b| {
        b.iter(|| black_box(&pod).matches(black_box("dc01.pod03.sw42")))
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("regex/cache_hit", |b| {
        let cache = PatternCache::new(64);
        cache.get(r"dc01\.pod03\..*").unwrap();
        b.iter(|| cache.get(black_box(r"dc01\.pod03\..*")).unwrap())
    });
    c.bench_function("regex/cache_miss_compile", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let cache = PatternCache::new(4);
            i += 1;
            cache.get(&format!(r"dc01\.pod{:02}\..*", i % 96)).unwrap()
        })
    });
}

criterion_group!(benches, bench_compile, bench_algebra, bench_cache);
criterion_main!(benches);
