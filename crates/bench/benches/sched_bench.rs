//! Criterion micro-benchmarks for the SCHED invocation (Figure 10a): the
//! same decision procedure the simulator times, isolated per granularity
//! and policy.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use occam_objtree::{LockMode, ObjTree, TaskId};
use occam_regex::Pattern;
use occam_sched::{LockSpace, Policy, Scheduler};
use occam_sim::FlatSpace;
use std::hint::black_box;

/// An object tree with `n` contended pods: half the tasks hold, half wait.
fn contended_tree(n: u64) -> ObjTree {
    let mut t = ObjTree::new();
    for i in 0..n {
        let obj =
            t.insert_region(&Pattern::from_glob(&format!("dc01.pod{:02}.*", i % 96)).unwrap())[0];
        t.request_lock(TaskId(i), obj, LockMode::Exclusive, i, false);
        if i % 2 == 0 {
            t.grant(obj, TaskId(i));
        }
    }
    t
}

/// A flat device space with `tasks` tasks each holding/waiting 92 devices.
fn contended_flat(tasks: u64) -> FlatSpace {
    let mut s = FlatSpace::new();
    for i in 0..tasks {
        let base = (i % 16) * 92;
        for d in 0..92u64 {
            s.request(TaskId(i), (base + d) as u32, LockMode::Exclusive, i, false);
        }
        if i % 2 == 0 {
            for d in 0..92u64 {
                s.grant((base + d) as u32, TaskId(i));
            }
        }
    }
    s
}

fn bench_sched(c: &mut Criterion) {
    for policy in [Policy::Fifo, Policy::Ldsf] {
        c.bench_function(&format!("sched/objtree_32tasks_{policy:?}"), |b| {
            b.iter_batched_ref(
                || (contended_tree(32), Scheduler::new(policy)),
                |(tree, sched)| black_box(sched.sched(tree).len()),
                BatchSize::SmallInput,
            )
        });
        c.bench_function(&format!("sched/devices_64tasks_{policy:?}"), |b| {
            b.iter_batched_ref(
                || (contended_flat(64), Scheduler::new(policy)),
                |(space, sched)| black_box(sched.sched(space).len()),
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_deadlock_detection(c: &mut Criterion) {
    c.bench_function("sched/find_deadlock_cycle_none", |b| {
        let tree = contended_tree(48);
        b.iter(|| black_box(tree.find_deadlock_cycle()))
    });
}

criterion_group!(benches, bench_sched, bench_deadlock_detection);
criterion_main!(benches);
