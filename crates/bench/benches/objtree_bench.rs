//! Criterion micro-benchmarks for object-tree maintenance (Figure 10c):
//! insertion (regex comparisons against siblings), splits, and deletion.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use occam_objtree::ObjTree;
use occam_regex::Pattern;
use std::hint::black_box;

fn populated(pods: u32) -> ObjTree {
    let mut t = ObjTree::new();
    for dc in 1..=4u32 {
        for p in 0..pods {
            t.insert_region(&Pattern::from_glob(&format!("dc{dc:02}.pod{p:02}.*")).unwrap());
        }
    }
    t
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("objtree/insert_disjoint_into_64", |b| {
        let fresh = Pattern::from_glob("dc05.pod00.*").unwrap();
        b.iter_batched_ref(
            || populated(16),
            |t| black_box(t.insert_region(&fresh)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("objtree/insert_contained", |b| {
        let child = Pattern::from_glob("dc01.pod03.sw07").unwrap();
        b.iter_batched_ref(
            || populated(16),
            |t| black_box(t.insert_region(&child)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("objtree/insert_with_split", |b| {
        let overlapping = Pattern::new(r"dc01\.pod0[2-5]\.sw0[0-4]").unwrap();
        b.iter_batched_ref(
            || populated(16),
            |t| black_box(t.insert_region(&overlapping)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_delete(c: &mut Criterion) {
    c.bench_function("objtree/release_ref", |b| {
        let region = Pattern::from_glob("dc01.pod03.*").unwrap();
        b.iter_batched_ref(
            || {
                let mut t = populated(16);
                let ids = t.insert_region(&region);
                (t, ids[0])
            },
            |(t, id)| black_box(t.release_ref(*id)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_queries(c: &mut Criterion) {
    let mut t = populated(24);
    let pod = t.insert_region(&Pattern::from_glob("dc01.pod03.*").unwrap())[0];
    c.bench_function("objtree/containment_query", |b| {
        b.iter(|| black_box(t.containment(black_box(pod))))
    });
    c.bench_function("objtree/validate_full_tree", |b| {
        b.iter(|| t.validate().unwrap())
    });
}

criterion_group!(benches, bench_insert, bench_delete, bench_queries);
criterion_main!(benches);
