//! Identifier and lock-mode types shared across the object tree.

/// Identifier of a network object (a node in the object tree).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ObjectId(pub u64);

/// Identifier of a management task.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TaskId(pub u64);

/// The access mode of a lock or lock request.
///
/// Held locks are `S`/`X` edges in the paper's object/task dependency graph;
/// pending requests are the intentional `IS`/`IX` edges. The mode is the
/// same enum in both roles — whether it is "intentional" is determined by
/// whether the edge sits in a node's waiter queue or holder set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LockMode {
    /// Shared (read) access; `get()`-only tasks request this.
    Shared,
    /// Exclusive (write) access; tasks using `set()`/`apply()` request this.
    Exclusive,
}

impl LockMode {
    /// Two locks are compatible iff both are shared.
    pub fn compatible(self, other: LockMode) -> bool {
        self == LockMode::Shared && other == LockMode::Shared
    }

    /// Short display form matching the paper's notation (`S`/`X`).
    pub fn letter(self) -> char {
        match self {
            LockMode::Shared => 'S',
            LockMode::Exclusive => 'X',
        }
    }
}

/// A pending lock request (an intentional `IS`/`IX` edge).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LockRequest {
    /// The requesting task.
    pub task: TaskId,
    /// Requested access mode.
    pub mode: LockMode,
    /// Logical arrival time (used by FIFO scheduling and tie-breaks).
    pub arrival: u64,
    /// Whether the task was flagged urgent (outage recovery); urgent
    /// requests are scheduled ahead of ordinary ones.
    pub urgent: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(Shared.compatible(Shared));
        assert!(!Shared.compatible(Exclusive));
        assert!(!Exclusive.compatible(Shared));
        assert!(!Exclusive.compatible(Exclusive));
    }

    #[test]
    fn letters() {
        assert_eq!(LockMode::Shared.letter(), 'S');
        assert_eq!(LockMode::Exclusive.letter(), 'X');
    }
}
