//! The network object tree (paper §4.3, Figure 4).
//!
//! Nodes form a laminar family over the device-name space: a parent
//! strictly contains each child, and siblings are pairwise disjoint. The
//! tree therefore encodes *all* containment relations between active
//! regions: two nodes overlap iff one is an ancestor of the other.
//!
//! `INSERT` performs the recursive descent of Figure 4, `SPLIT` carves
//! overlaps into intersection + remainder using the regex algebra, and
//! `DELETE` reference-counts objects and grafts children on removal.

use crate::relcache::{RelCacheStats, RelationCache};
use crate::types::{LockMode, LockRequest, ObjectId, TaskId};
use occam_obs::{Counter, Histogram, Registry};
use occam_regex::{Pattern, Relation};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::time::Duration;

/// Observability handles for tree maintenance, bound to a [`Registry`]
/// under the `objtree.*` names (DESIGN.md §9). Updated alongside
/// [`TreeStats`], which remains the in-process accessor.
#[derive(Clone, Debug, Default)]
struct TreeObs {
    inserts: Counter,
    splits: Counter,
    deletes: Counter,
    insert_ns: Histogram,
    delete_ns: Histogram,
}

impl TreeObs {
    fn bound(reg: &Registry) -> TreeObs {
        TreeObs {
            inserts: reg.counter("objtree.inserts"),
            splits: reg.counter("objtree.splits"),
            deletes: reg.counter("objtree.deletes"),
            insert_ns: reg.histogram("objtree.insert_ns"),
            delete_ns: reg.histogram("objtree.delete_ns"),
        }
    }
}

/// A node in the object tree.
#[derive(Clone, Debug)]
pub struct Node {
    /// This node's id.
    pub id: ObjectId,
    /// The symbolic region the node covers.
    pub region: Pattern,
    /// Parent node (`None` only for the virtual root `.*`).
    pub parent: Option<ObjectId>,
    /// Child nodes (disjoint, strictly contained in this region).
    pub children: Vec<ObjectId>,
    /// Tasks currently holding locks (S: possibly many; X: exactly one).
    pub holders: Vec<(TaskId, LockMode)>,
    /// Pending lock requests in arrival order (IS/IX edges).
    pub waiters: Vec<LockRequest>,
    /// Number of tasks that reference this object.
    pub refcount: u32,
}

/// Counters and timings for tree maintenance (Figure 10c input).
#[derive(Clone, Copy, Default, Debug)]
pub struct TreeStats {
    /// Number of `insert_region` calls.
    pub inserts: u64,
    /// Number of splits performed.
    pub splits: u64,
    /// Number of node deletions.
    pub deletes: u64,
    /// Wall time spent inside `insert_region`.
    pub insert_time: Duration,
    /// Wall time spent inside deletions.
    pub delete_time: Duration,
}

/// How overlapping regions are reconciled on insert.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SplitMode {
    /// Figure 4's SPLIT: carve the overlap into intersection + remainder,
    /// so tasks lock exactly what they need.
    #[default]
    Split,
    /// Ablation: coarsen instead — the new region expands to the union of
    /// itself and every overlapping sibling, over-locking but avoiding
    /// split machinery. Used to measure what SPLIT buys (DESIGN.md §7).
    Coarsen,
}

/// The object tree plus per-task bookkeeping.
#[derive(Debug)]
pub struct ObjTree {
    nodes: HashMap<ObjectId, Node>,
    root: ObjectId,
    next_id: u64,
    mode: SplitMode,
    /// Maintenance statistics.
    pub stats: TreeStats,
    /// Per-task lock bookkeeping: objects granted to the task.
    granted: HashMap<TaskId, Vec<ObjectId>>,
    /// Per-task lock bookkeeping: objects the task is waiting on.
    waiting: HashMap<TaskId, Vec<ObjectId>>,
    /// Fingerprint-keyed cache of region relations, shared by inserts and
    /// validation. Interior-mutable so `&self` queries can consult it.
    relcache: RefCell<RelationCache>,
    /// Registry-bound instrument handles (a private registry by default;
    /// see [`ObjTree::with_obs`]).
    obs: TreeObs,
    /// Nodes that currently have at least one pending waiter, maintained
    /// incrementally by the lock layer so the scheduler's
    /// `objects_with_waiters` is O(answer) instead of O(tree).
    pub(crate) waiter_idx: BTreeSet<ObjectId>,
}

impl ObjTree {
    /// Creates a tree holding only the virtual root `.*` (InitObjTree in
    /// Figure 4), splitting overlaps per the paper.
    pub fn new() -> ObjTree {
        ObjTree::with_mode(SplitMode::Split)
    }

    /// Creates a tree with an explicit overlap-reconciliation mode.
    pub fn with_mode(mode: SplitMode) -> ObjTree {
        ObjTree::with_obs(mode, &Registry::new())
    }

    /// Creates a tree whose `objtree.*` instruments (insert/split/delete
    /// counters, maintenance latency histograms, relate-cache counters)
    /// are bound to `reg` — see DESIGN.md §9 for the name contract.
    pub fn with_obs(mode: SplitMode, reg: &Registry) -> ObjTree {
        let root_id = ObjectId(0);
        let mut nodes = HashMap::new();
        nodes.insert(
            root_id,
            Node {
                id: root_id,
                region: Pattern::universe(),
                parent: None,
                children: Vec::new(),
                holders: Vec::new(),
                waiters: Vec::new(),
                refcount: 1, // the root is never deleted
            },
        );
        ObjTree {
            nodes,
            root: root_id,
            next_id: 1,
            mode,
            stats: TreeStats::default(),
            granted: HashMap::new(),
            waiting: HashMap::new(),
            relcache: RefCell::new(RelationCache::with_obs(reg)),
            obs: TreeObs::bound(reg),
            waiter_idx: BTreeSet::new(),
        }
    }

    /// Relates two regions through the tree's bounded relation cache: one
    /// product walk on a miss, none on a hit or when the fingerprints
    /// already agree.
    pub fn relate_cached(&self, a: &Pattern, b: &Pattern) -> Relation {
        self.relcache.borrow_mut().relate(a, b)
    }

    /// Hit/miss/eviction counters of the relation cache.
    pub fn relate_cache_stats(&self) -> RelCacheStats {
        self.relcache.borrow().stats()
    }

    /// The nodes that currently have pending waiters, in id order.
    ///
    /// Served from the incrementally maintained index — O(answer), not
    /// O(tree).
    pub fn nodes_with_waiters(&self) -> Vec<ObjectId> {
        self.waiter_idx.iter().copied().collect()
    }

    /// The overlap-reconciliation mode.
    pub fn mode(&self) -> SplitMode {
        self.mode
    }

    /// The virtual root id.
    pub fn root(&self) -> ObjectId {
        self.root
    }

    /// Number of nodes, including the virtual root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the virtual root remains.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Immutable node accessor.
    pub fn node(&self, id: ObjectId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Mutable node accessor (crate-internal; lock code lives in `lock.rs`).
    pub(crate) fn node_mut(&mut self, id: ObjectId) -> Option<&mut Node> {
        self.nodes.get_mut(&id)
    }

    /// Iterates over all node ids (unordered).
    pub fn node_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.nodes.keys().copied()
    }

    /// All ancestors of `id`, nearest first, excluding `id`, including root.
    pub fn ancestors(&self, id: ObjectId) -> Vec<ObjectId> {
        let mut out = Vec::new();
        let mut cur = self.nodes.get(&id).and_then(|n| n.parent);
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes.get(&p).and_then(|n| n.parent);
        }
        out
    }

    /// All descendants of `id` (excluding `id`), preorder.
    pub fn descendants(&self, id: ObjectId) -> Vec<ObjectId> {
        let mut out = Vec::new();
        let mut stack: Vec<ObjectId> = match self.nodes.get(&id) {
            Some(n) => n.children.clone(),
            None => return out,
        };
        while let Some(c) = stack.pop() {
            out.push(c);
            if let Some(n) = self.nodes.get(&c) {
                stack.extend(n.children.iter().copied());
            }
        }
        out
    }

    /// The containment set of `id`: itself, its ancestors, and its
    /// descendants — exactly the nodes whose regions overlap `id`'s region
    /// (Figure 5's `Containment(obj)`).
    pub fn containment(&self, id: ObjectId) -> Vec<ObjectId> {
        let mut out = vec![id];
        out.extend(self.ancestors(id));
        out.extend(self.descendants(id));
        out
    }

    fn alloc_node(&mut self, region: Pattern, parent: ObjectId) -> ObjectId {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        self.nodes.insert(
            id,
            Node {
                id,
                region,
                parent: Some(parent),
                children: Vec::new(),
                holders: Vec::new(),
                waiters: Vec::new(),
                refcount: 0,
            },
        );
        self.nodes
            .get_mut(&parent)
            .expect("parent exists")
            .children
            .push(id);
        id
    }

    fn reparent(&mut self, child: ObjectId, new_parent: ObjectId) {
        let old_parent = self.nodes[&child].parent;
        if let Some(op) = old_parent {
            if let Some(n) = self.nodes.get_mut(&op) {
                n.children.retain(|&c| c != child);
            }
        }
        self.nodes.get_mut(&child).expect("child exists").parent = Some(new_parent);
        self.nodes
            .get_mut(&new_parent)
            .expect("new parent exists")
            .children
            .push(child);
    }

    /// Inserts a region into the tree (Figure 4's INSERT, with SPLIT).
    ///
    /// Returns the set of node ids that exactly cover `region`: usually one
    /// node, but after splits a region may decompose into several
    /// intersection nodes plus a remainder. Every returned node's refcount
    /// is incremented on behalf of the caller.
    ///
    /// Empty regions return an empty set.
    pub fn insert_region(&mut self, region: &Pattern) -> Vec<ObjectId> {
        let start = std::time::Instant::now();
        self.stats.inserts += 1;
        self.obs.inserts.inc();
        let mut covering = Vec::new();
        if region.is_universe() {
            // A task scoping the whole network locks the virtual root.
            covering.push(self.root);
        } else if !region.is_empty() {
            self.insert_at(self.root, region.clone(), &mut covering);
        }
        for &id in &covering {
            self.nodes
                .get_mut(&id)
                .expect("covering node exists")
                .refcount += 1;
        }
        let dt = start.elapsed();
        self.stats.insert_time += dt;
        self.obs.insert_ns.record_duration(dt);
        covering
    }

    /// Recursive descent of Figure 4. `covering` accumulates the node ids
    /// that together cover the inserted region.
    fn insert_at(&mut self, root: ObjectId, mut obj: Pattern, covering: &mut Vec<ObjectId>) {
        let mut adopted: Vec<ObjectId> = Vec::new();
        // Coarsen mode can grow `obj`, creating overlap with siblings that
        // were already scanned — growing restarts the scan.
        'rescan: loop {
            let children: Vec<ObjectId> = self.nodes[&root].children.clone();
            for c in children {
                // A child may have been re-parented by an earlier split
                // insert (or already adopted); skip stale entries.
                if adopted.contains(&c) || self.nodes.get(&c).map(|n| n.parent) != Some(Some(root))
                {
                    continue;
                }
                let c_region = self.nodes[&c].region.clone();
                // ONE (usually cached) relation query per child probe,
                // replacing the former equivalent/contains/contains/
                // overlaps chain of up to four product walks.
                let rel = self.relcache.borrow_mut().relate(&obj, &c_region);
                match rel {
                    Relation::Equal => {
                        // Exact match: reuse the existing node.
                        covering.push(c);
                        return;
                    }
                    Relation::ProperSubset => {
                        // Recursive descent into the unique containing child.
                        self.insert_at(c, obj, covering);
                        return;
                    }
                    Relation::ProperSuperset => {
                        // The new object adopts this child.
                        adopted.push(c);
                    }
                    Relation::Disjoint => {}
                    Relation::Overlap => match self.mode {
                        SplitMode::Split => {
                            // SPLIT: insert the intersection into the
                            // existing child's subtree; continue with the
                            // remainder. Shrinking cannot create new
                            // overlaps, so the single pass stays valid.
                            self.stats.splits += 1;
                            self.obs.splits.inc();
                            let inter = obj.intersect(&c_region);
                            self.insert_at(c, inter, covering);
                            obj = obj.subtract(&c_region);
                            if obj.is_empty() {
                                break 'rescan;
                            }
                        }
                        SplitMode::Coarsen => {
                            // Ablation: expand the new region to swallow
                            // the overlapping child (which it adopts) and
                            // rescan with the grown region.
                            obj = obj.union(&c_region);
                            adopted.push(c);
                            continue 'rescan;
                        }
                    },
                }
            }
            break;
        }
        if !obj.is_empty() {
            // Splits may shrink the remainder to exactly one adopted child
            // (disjointness rules out matching one of several); reuse it
            // rather than stacking an equal-region parent on top.
            // Fingerprint equality decides language equality product-free.
            if adopted.len() == 1
                && self.nodes[&adopted[0]].region.fingerprint() == obj.fingerprint()
            {
                covering.push(adopted[0]);
                return;
            }
            let id = self.alloc_node(obj, root);
            for a in adopted {
                self.reparent(a, id);
            }
            covering.push(id);
        } else {
            // Fully split away: adopted children (if any) stay where they
            // are — they are already covered via the splits.
            debug_assert!(adopted.is_empty(), "adoption implies non-empty remainder");
        }
    }

    /// Drops one reference to `id`; deletes the node (grafting children to
    /// its parent, Figure 4's DELETE) once it is unreferenced, unlocked, and
    /// has no waiters.
    ///
    /// Returns `true` if the node was physically removed.
    pub fn release_ref(&mut self, id: ObjectId) -> bool {
        let start = std::time::Instant::now();
        let removed = (|| {
            let node = match self.nodes.get_mut(&id) {
                Some(n) => n,
                None => return false,
            };
            node.refcount = node.refcount.saturating_sub(1);
            if id == self.root
                || node.refcount > 0
                || !node.holders.is_empty()
                || !node.waiters.is_empty()
            {
                return false;
            }
            let parent = node.parent.expect("non-root has a parent");
            let children = node.children.clone();
            self.nodes.remove(&id);
            // Deletion requires no waiters, so the index cannot list the
            // node; remove defensively to keep the invariant unconditional.
            self.waiter_idx.remove(&id);
            if let Some(p) = self.nodes.get_mut(&parent) {
                p.children.retain(|&c| c != id);
            }
            for c in children {
                self.nodes.get_mut(&c).expect("child exists").parent = Some(parent);
                self.nodes
                    .get_mut(&parent)
                    .expect("parent exists")
                    .children
                    .push(c);
            }
            self.stats.deletes += 1;
            true
        })();
        if removed {
            self.obs.deletes.inc();
        }
        let dt = start.elapsed();
        self.stats.delete_time += dt;
        self.obs.delete_ns.record_duration(dt);
        removed
    }

    /// The objects currently granted to `task`.
    pub fn granted_objects(&self, task: TaskId) -> &[ObjectId] {
        self.granted.get(&task).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The objects `task` is waiting on.
    pub fn waiting_objects(&self, task: TaskId) -> &[ObjectId] {
        self.waiting.get(&task).map(Vec::as_slice).unwrap_or(&[])
    }

    pub(crate) fn granted_mut(&mut self) -> &mut HashMap<TaskId, Vec<ObjectId>> {
        &mut self.granted
    }

    pub(crate) fn waiting_mut(&mut self) -> &mut HashMap<TaskId, Vec<ObjectId>> {
        &mut self.waiting
    }

    /// All tasks with any granted or waiting edge.
    pub fn active_tasks(&self) -> Vec<TaskId> {
        let mut v: Vec<TaskId> = self
            .granted
            .keys()
            .chain(self.waiting.keys())
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Validates the two tree invariants (paper §4.3): every parent
    /// strictly contains each child, and siblings are pairwise disjoint.
    /// Also checks structural consistency (parent/child symmetry).
    ///
    /// Returns a description of the first violation, or `Ok(())`.
    pub fn validate(&self) -> Result<(), String> {
        for (id, node) in &self.nodes {
            if let Some(p) = node.parent {
                let parent = self
                    .nodes
                    .get(&p)
                    .ok_or_else(|| format!("{id:?}: dangling parent {p:?}"))?;
                if !parent.children.contains(id) {
                    return Err(format!("{id:?}: parent {p:?} does not list it"));
                }
            } else if *id != self.root {
                return Err(format!("{id:?}: non-root without parent"));
            }
            for (i, &a) in node.children.iter().enumerate() {
                let an = self
                    .nodes
                    .get(&a)
                    .ok_or_else(|| format!("{id:?}: dangling child {a:?}"))?;
                if an.parent != Some(*id) {
                    return Err(format!("{a:?}: child does not point back to {id:?}"));
                }
                if self.relate_cached(&node.region, &an.region) != Relation::ProperSuperset {
                    return Err(format!(
                        "parent {} does not strictly contain child {}",
                        node.region, an.region
                    ));
                }
                for &b in &node.children[i + 1..] {
                    let bn = &self.nodes[&b];
                    if self.relate_cached(&an.region, &bn.region) != Relation::Disjoint {
                        return Err(format!("siblings overlap: {} and {}", an.region, bn.region));
                    }
                }
            }
        }
        Ok(())
    }
}

impl Default for ObjTree {
    fn default() -> Self {
        ObjTree::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(glob: &str) -> Pattern {
        Pattern::from_glob(glob).unwrap()
    }

    #[test]
    fn insert_builds_hierarchy() {
        let mut t = ObjTree::new();
        let dc = t.insert_region(&pat("dc01.*"));
        let pod = t.insert_region(&pat("dc01.pod03.*"));
        assert_eq!(dc.len(), 1);
        assert_eq!(pod.len(), 1);
        assert_eq!(t.node(pod[0]).unwrap().parent, Some(dc[0]));
        t.validate().unwrap();
    }

    #[test]
    fn insert_exact_match_reuses_node() {
        let mut t = ObjTree::new();
        let a = t.insert_region(&pat("dc01.pod01.*"));
        let b = t.insert_region(&pat("dc01.pod01.*"));
        assert_eq!(a, b);
        assert_eq!(t.node(a[0]).unwrap().refcount, 2);
        t.validate().unwrap();
    }

    #[test]
    fn insert_adopts_contained_children() {
        let mut t = ObjTree::new();
        let pod = t.insert_region(&pat("dc01.pod03.*"));
        let dc = t.insert_region(&pat("dc01.*"));
        // dc01.* adopts dc01.pod03.*.
        assert_eq!(t.node(pod[0]).unwrap().parent, Some(dc[0]));
        assert_eq!(t.node(dc[0]).unwrap().parent, Some(t.root()));
        t.validate().unwrap();
    }

    #[test]
    fn containing_insert_adopts_and_covers_with_one_node() {
        // Existing dc1.pod3.*, insert dc1.pod[0-4].*: containment, not
        // overlap — the new node adopts pod3 and alone covers the region
        // (its lock blocks pod3 holders via containment conflicts).
        let mut t = ObjTree::new();
        let pod3 = t.insert_region(&Pattern::new(r"dc1\.pod3\..*").unwrap());
        let range = t.insert_region(&Pattern::new(r"dc1\.pod[0-4]\..*").unwrap());
        assert_eq!(range.len(), 1);
        assert_eq!(t.node(pod3[0]).unwrap().parent, Some(range[0]));
        assert_eq!(t.stats.splits, 0);
        t.validate().unwrap();
    }

    #[test]
    fn overlapping_insert_splits() {
        // Mirrors Figure 3d: existing dc1.pod[2-6].*, insert the partially
        // overlapping dc1.pod[0-4].*.
        let mut t = ObjTree::new();
        let existing = t.insert_region(&Pattern::new(r"dc1\.pod[2-6]\..*").unwrap());
        let range = t.insert_region(&Pattern::new(r"dc1\.pod[0-4]\..*").unwrap());
        // The new region decomposes into the intersection (pod[2-4], a new
        // child of the existing node) plus the remainder (pod[0-1]).
        assert_eq!(range.len(), 2);
        assert!(t.stats.splits >= 1);
        let inter = Pattern::new(r"dc1\.pod[2-4]\..*").unwrap();
        let inter_node = range
            .iter()
            .find(|&&id| t.node(id).unwrap().region.equivalent(&inter))
            .copied()
            .expect("intersection node exists");
        assert_eq!(t.node(inter_node).unwrap().parent, Some(existing[0]));
        // Union of covering nodes equals the requested region.
        let union = t
            .node(range[0])
            .unwrap()
            .region
            .union(&t.node(range[1]).unwrap().region);
        assert!(union.equivalent(&Pattern::new(r"dc1\.pod[0-4]\..*").unwrap()));
        t.validate().unwrap();
    }

    #[test]
    fn remainder_shrinking_to_adopted_child_reuses_it() {
        // obj = pod[1-2]; existing children pod1 (contained → adopted) and
        // pod[2-3] (overlap → split). The remainder collapses to exactly
        // pod1, which must be reused, not double-inserted.
        let mut t = ObjTree::new();
        let pod1 = t.insert_region(&Pattern::new(r"dc1\.pod1\..*").unwrap());
        let _p23 = t.insert_region(&Pattern::new(r"dc1\.pod[2-3]\..*").unwrap());
        let obj = t.insert_region(&Pattern::new(r"dc1\.pod[1-2]\..*").unwrap());
        assert!(obj.contains(&pod1[0]), "adopted-equal child is reused");
        t.validate().unwrap();
    }

    #[test]
    fn universe_region_locks_virtual_root() {
        let mut t = ObjTree::new();
        let r = t.insert_region(&Pattern::universe());
        assert_eq!(r, vec![t.root()]);
        t.validate().unwrap();
    }

    #[test]
    fn split_intersection_descends_into_existing_subtree() {
        let mut t = ObjTree::new();
        let _pods = t.insert_region(&Pattern::new(r"dc1\.pod[0-5]\..*").unwrap());
        let cross = t.insert_region(&Pattern::new(r"dc1\.pod[4-9]\..*").unwrap());
        // Intersection pod[4-5] goes under pod[0-5]; remainder pod[6-9]
        // under root.
        assert_eq!(cross.len(), 2);
        t.validate().unwrap();
        let regions: Vec<String> = cross
            .iter()
            .map(|&id| t.node(id).unwrap().region.source().to_string())
            .collect();
        // One of them matches pod4 names, the other pod7 names.
        let p4 = Pattern::new(r"dc1\.pod4\..*").unwrap();
        let p7 = Pattern::new(r"dc1\.pod7\..*").unwrap();
        let covers = |needle: &Pattern| {
            cross
                .iter()
                .any(|&id| t.node(id).unwrap().region.contains(needle))
        };
        assert!(covers(&p4), "regions: {regions:?}");
        assert!(covers(&p7), "regions: {regions:?}");
    }

    #[test]
    fn refcount_delete_grafts_children() {
        let mut t = ObjTree::new();
        let dc = t.insert_region(&pat("dc01.*"));
        let pod = t.insert_region(&pat("dc01.pod03.*"));
        // Release the DC object; pod should graft to root.
        assert!(t.release_ref(dc[0]));
        assert_eq!(t.node(pod[0]).unwrap().parent, Some(t.root()));
        assert!(t.node(dc[0]).is_none());
        t.validate().unwrap();
        // Release pod too; tree returns to just the root.
        assert!(t.release_ref(pod[0]));
        assert!(t.is_empty());
    }

    #[test]
    fn delete_waits_for_all_references() {
        let mut t = ObjTree::new();
        let a1 = t.insert_region(&pat("dc01.pod01.*"));
        let a2 = t.insert_region(&pat("dc01.pod01.*"));
        assert_eq!(a1, a2);
        assert!(!t.release_ref(a1[0]), "still referenced once");
        assert!(t.release_ref(a1[0]));
    }

    #[test]
    fn root_is_never_deleted() {
        let mut t = ObjTree::new();
        let root = t.root();
        assert!(!t.release_ref(root));
        assert!(t.node(root).is_some());
    }

    #[test]
    fn empty_region_inserts_nothing() {
        let mut t = ObjTree::new();
        let r = t.insert_region(&Pattern::new("[]").unwrap());
        assert!(r.is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn containment_set_is_ancestors_self_descendants() {
        let mut t = ObjTree::new();
        let dc = t.insert_region(&pat("dc01.*"));
        let pod = t.insert_region(&pat("dc01.pod03.*"));
        let rack = t.insert_region(&pat("dc01.pod03.sw0?"));
        let other = t.insert_region(&pat("dc02.*"));
        let c = t.containment(pod[0]);
        assert!(c.contains(&pod[0]));
        assert!(c.contains(&dc[0]));
        assert!(c.contains(&rack[0]));
        assert!(c.contains(&t.root()));
        assert!(!c.contains(&other[0]));
    }

    #[test]
    fn disjoint_regions_become_siblings() {
        let mut t = ObjTree::new();
        let a = t.insert_region(&pat("dc01.*"));
        let b = t.insert_region(&pat("dc02.*"));
        assert_eq!(t.node(a[0]).unwrap().parent, Some(t.root()));
        assert_eq!(t.node(b[0]).unwrap().parent, Some(t.root()));
        t.validate().unwrap();
    }

    #[test]
    fn coarsen_mode_unions_instead_of_splitting() {
        let mut t = ObjTree::with_mode(SplitMode::Coarsen);
        let _a = t.insert_region(&Pattern::new(r"dc1\.pod[0-3]\..*").unwrap());
        let b = t.insert_region(&Pattern::new(r"dc1\.pod[2-5]\..*").unwrap());
        // One covering node whose region is the union (over-locked).
        assert_eq!(b.len(), 1);
        let region = &t.node(b[0]).unwrap().region;
        assert!(region.equivalent(&Pattern::new(r"dc1\.pod[0-5]\..*").unwrap()));
        assert_eq!(t.stats.splits, 0);
        t.validate().unwrap();
    }

    #[test]
    fn coarsen_rescan_handles_chained_overlaps() {
        // The union of the second insert with pod[2-4] also overlaps
        // pod[0-1]: the rescan must swallow both earlier siblings.
        let mut t = ObjTree::with_mode(SplitMode::Coarsen);
        let _a = t.insert_region(&Pattern::new(r"dc1\.pod[0-1]\..*").unwrap());
        let _b = t.insert_region(&Pattern::new(r"dc1\.pod[3-4]\..*").unwrap());
        let c = t.insert_region(&Pattern::new(r"dc1\.pod[1-3]\..*").unwrap());
        assert_eq!(c.len(), 1);
        let region = &t.node(c[0]).unwrap().region;
        assert!(region.contains(&Pattern::new(r"dc1\.pod0\..*").unwrap()));
        assert!(region.contains(&Pattern::new(r"dc1\.pod4\..*").unwrap()));
        t.validate().unwrap();
    }

    #[test]
    fn stats_track_operations() {
        let mut t = ObjTree::new();
        t.insert_region(&pat("dc01.*"));
        let x = t.insert_region(&pat("dc02.*"));
        t.release_ref(x[0]);
        assert_eq!(t.stats.inserts, 2);
        assert_eq!(t.stats.deletes, 1);
    }
}
