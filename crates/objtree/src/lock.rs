//! Multi-granularity locking over the object tree (paper §4.4).
//!
//! Lock state lives on the tree nodes: `holders` are the S/X edges of the
//! object/task dependency graph, `waiters` the intentional IS/IX edges.
//! Because the tree is a laminar family, two regions conflict iff one node
//! is an ancestor of the other — so compatibility checks walk exactly the
//! containment set of a node, never the whole tree.

use crate::tree::ObjTree;
use crate::types::{LockMode, LockRequest, ObjectId, TaskId};

impl ObjTree {
    /// Enqueues a lock request (an IS/IX intentional edge) for `task` on
    /// `obj`. Duplicate requests (same task, same object) are ignored, as
    /// are requests for objects the task already holds.
    pub fn request_lock(
        &mut self,
        task: TaskId,
        obj: ObjectId,
        mode: LockMode,
        arrival: u64,
        urgent: bool,
    ) {
        let node = match self.node_mut(obj) {
            Some(n) => n,
            None => return,
        };
        if node.holders.iter().any(|&(t, _)| t == task)
            || node.waiters.iter().any(|w| w.task == task)
        {
            return;
        }
        node.waiters.push(LockRequest {
            task,
            mode,
            arrival,
            urgent,
        });
        self.waiter_idx.insert(obj);
        self.waiting_mut().entry(task).or_default().push(obj);
    }

    /// The tasks currently holding locks on `obj`.
    pub fn holders_of(&self, obj: ObjectId) -> &[(TaskId, LockMode)] {
        self.node(obj).map(|n| n.holders.as_slice()).unwrap_or(&[])
    }

    /// The pending requests on `obj`, in arrival order.
    pub fn waiters_of(&self, obj: ObjectId) -> &[LockRequest] {
        self.node(obj).map(|n| n.waiters.as_slice()).unwrap_or(&[])
    }

    /// Tasks whose held locks conflict with `task` acquiring `mode` on
    /// `obj`, considering the containment set (self, ancestors,
    /// descendants).
    pub fn blockers(&self, obj: ObjectId, task: TaskId, mode: LockMode) -> Vec<TaskId> {
        let mut out = Vec::new();
        for o in self.containment(obj) {
            for &(t, m) in self.holders_of(o) {
                if t != task && !mode.compatible(m) && !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        out
    }

    /// True if granting `mode` on `obj` to `task` conflicts with no held
    /// lock.
    pub fn can_grant(&self, obj: ObjectId, task: TaskId, mode: LockMode) -> bool {
        self.blockers(obj, task, mode).is_empty()
    }

    /// Grants the pending request of `task` on `obj`: flips the intentional
    /// edge into a locking edge. Returns the granted mode, or `None` if no
    /// such request exists **or** the stored request is incompatible with
    /// current holders — the grant is re-validated here so a confused
    /// scheduler can never break lock safety.
    pub fn grant(&mut self, obj: ObjectId, task: TaskId) -> Option<LockMode> {
        let mode = {
            let node = self.node(obj)?;
            node.waiters.iter().find(|w| w.task == task)?.mode
        };
        if !self.can_grant(obj, task, mode) {
            return None;
        }
        let node = self.node_mut(obj)?;
        node.waiters.retain(|w| w.task != task);
        node.holders.push((task, mode));
        if self.node(obj).is_some_and(|n| n.waiters.is_empty()) {
            self.waiter_idx.remove(&obj);
        }
        if let Some(w) = self.waiting_mut().get_mut(&task) {
            w.retain(|&o| o != obj);
        }
        self.granted_mut().entry(task).or_default().push(obj);
        Some(mode)
    }

    /// Releases every lock held by `task` and cancels its pending requests
    /// (strict 2PL: all locks release together at commit or abort).
    ///
    /// Returns the objects the task held or waited on — the scheduler
    /// re-examines these for waiting tasks.
    pub fn release_task(&mut self, task: TaskId) -> Vec<ObjectId> {
        let held = self.granted_mut().remove(&task).unwrap_or_default();
        let waited = self.waiting_mut().remove(&task).unwrap_or_default();
        for &obj in &held {
            if let Some(n) = self.node_mut(obj) {
                n.holders.retain(|&(t, _)| t != task);
            }
        }
        for &obj in &waited {
            let now_empty = match self.node_mut(obj) {
                Some(n) => {
                    n.waiters.retain(|w| w.task != task);
                    n.waiters.is_empty()
                }
                None => false,
            };
            if now_empty {
                self.waiter_idx.remove(&obj);
            }
        }
        let mut out = held;
        out.extend(waited);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Builds the waits-for edges `waiter → holder` implied by current lock
    /// state (including containment conflicts).
    ///
    /// Walks only the nodes in the incrementally maintained waiter index —
    /// nodes without waiters cannot source an edge — so the cost scales
    /// with contention, not with tree size.
    pub fn waits_for_edges(&self) -> Vec<(TaskId, TaskId)> {
        let mut edges = Vec::new();
        for obj in self.nodes_with_waiters() {
            for w in self.waiters_of(obj).to_vec() {
                for b in self.blockers(obj, w.task, w.mode) {
                    if !edges.contains(&(w.task, b)) {
                        edges.push((w.task, b));
                    }
                }
            }
        }
        edges
    }

    /// Detects a deadlock cycle in the waits-for graph.
    ///
    /// Returns the tasks on one cycle (in order), or `None`. The standard
    /// resolution (paper §5) is to abort and re-execute one member.
    pub fn find_deadlock_cycle(&self) -> Option<Vec<TaskId>> {
        let edges = self.waits_for_edges();
        let mut adj: std::collections::HashMap<TaskId, Vec<TaskId>> =
            std::collections::HashMap::new();
        for (a, b) in &edges {
            adj.entry(*a).or_default().push(*b);
        }
        // Iterative DFS with colors; reconstruct the cycle from the stack.
        let mut color: std::collections::HashMap<TaskId, u8> = std::collections::HashMap::new();
        let nodes: Vec<TaskId> = adj.keys().copied().collect();
        for &start in &nodes {
            if color.get(&start).copied().unwrap_or(0) != 0 {
                continue;
            }
            let mut path: Vec<TaskId> = Vec::new();
            let mut stack: Vec<(TaskId, usize)> = vec![(start, 0)];
            while let Some(&mut (t, ref mut i)) = stack.last_mut() {
                if *i == 0 {
                    color.insert(t, 1);
                    path.push(t);
                }
                let next = adj.get(&t).and_then(|v| v.get(*i)).copied();
                *i += 1;
                match next {
                    Some(n) => match color.get(&n).copied().unwrap_or(0) {
                        0 => stack.push((n, 0)),
                        1 => {
                            // Found a back edge: the cycle is the path
                            // suffix starting at n.
                            let pos = path
                                .iter()
                                .position(|&p| p == n)
                                .expect("gray node is on the path");
                            return Some(path[pos..].to_vec());
                        }
                        _ => {}
                    },
                    None => {
                        color.insert(t, 2);
                        path.pop();
                        stack.pop();
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_regex::Pattern;

    fn pat(glob: &str) -> Pattern {
        Pattern::from_glob(glob).unwrap()
    }

    fn setup() -> (ObjTree, ObjectId, ObjectId, ObjectId) {
        // dc (parent) with two pods (disjoint siblings).
        let mut t = ObjTree::new();
        let dc = t.insert_region(&pat("dc01.*"))[0];
        let p1 = t.insert_region(&pat("dc01.pod01.*"))[0];
        let p2 = t.insert_region(&pat("dc01.pod02.*"))[0];
        (t, dc, p1, p2)
    }

    #[test]
    fn shared_locks_coexist_on_same_object() {
        let (mut t, _, p1, _) = setup();
        t.request_lock(TaskId(1), p1, LockMode::Shared, 0, false);
        t.request_lock(TaskId(2), p1, LockMode::Shared, 1, false);
        assert!(t.can_grant(p1, TaskId(1), LockMode::Shared));
        t.grant(p1, TaskId(1)).unwrap();
        assert!(t.can_grant(p1, TaskId(2), LockMode::Shared));
        t.grant(p1, TaskId(2)).unwrap();
        assert_eq!(t.holders_of(p1).len(), 2);
    }

    #[test]
    fn exclusive_blocks_everything_on_object() {
        let (mut t, _, p1, _) = setup();
        t.request_lock(TaskId(1), p1, LockMode::Exclusive, 0, false);
        t.grant(p1, TaskId(1)).unwrap();
        assert!(!t.can_grant(p1, TaskId(2), LockMode::Shared));
        assert!(!t.can_grant(p1, TaskId(2), LockMode::Exclusive));
        // The holder itself is not blocked by its own lock.
        assert!(t.can_grant(p1, TaskId(1), LockMode::Exclusive));
    }

    #[test]
    fn containment_conflicts_ancestor_blocks_descendant() {
        let (mut t, dc, p1, p2) = setup();
        t.request_lock(TaskId(1), dc, LockMode::Exclusive, 0, false);
        t.grant(dc, TaskId(1)).unwrap();
        // X on the whole DC blocks both pods...
        assert!(!t.can_grant(p1, TaskId(2), LockMode::Exclusive));
        assert!(!t.can_grant(p2, TaskId(2), LockMode::Shared));
        // ...and the blocker list names the DC holder.
        assert_eq!(t.blockers(p1, TaskId(2), LockMode::Shared), vec![TaskId(1)]);
    }

    #[test]
    fn containment_conflicts_descendant_blocks_ancestor() {
        let (mut t, dc, p1, _) = setup();
        t.request_lock(TaskId(1), p1, LockMode::Exclusive, 0, false);
        t.grant(p1, TaskId(1)).unwrap();
        assert!(!t.can_grant(dc, TaskId(2), LockMode::Exclusive));
        assert!(!t.can_grant(dc, TaskId(2), LockMode::Shared));
    }

    #[test]
    fn disjoint_siblings_do_not_conflict() {
        let (mut t, _, p1, p2) = setup();
        t.request_lock(TaskId(1), p1, LockMode::Exclusive, 0, false);
        t.grant(p1, TaskId(1)).unwrap();
        assert!(t.can_grant(p2, TaskId(2), LockMode::Exclusive));
    }

    #[test]
    fn shared_on_ancestor_allows_shared_below() {
        let (mut t, dc, p1, _) = setup();
        t.request_lock(TaskId(1), dc, LockMode::Shared, 0, false);
        t.grant(dc, TaskId(1)).unwrap();
        assert!(t.can_grant(p1, TaskId(2), LockMode::Shared));
        assert!(!t.can_grant(p1, TaskId(2), LockMode::Exclusive));
    }

    #[test]
    fn release_task_frees_all_locks_and_waits() {
        let (mut t, dc, p1, _) = setup();
        t.request_lock(TaskId(1), p1, LockMode::Exclusive, 0, false);
        t.grant(p1, TaskId(1)).unwrap();
        t.request_lock(TaskId(1), dc, LockMode::Exclusive, 1, false);
        let released = t.release_task(TaskId(1));
        assert_eq!(released.len(), 2);
        assert!(t.holders_of(p1).is_empty());
        assert!(t.waiters_of(dc).is_empty());
        assert!(t.granted_objects(TaskId(1)).is_empty());
        assert!(t.waiting_objects(TaskId(1)).is_empty());
    }

    #[test]
    fn duplicate_requests_ignored() {
        let (mut t, _, p1, _) = setup();
        t.request_lock(TaskId(1), p1, LockMode::Shared, 0, false);
        t.request_lock(TaskId(1), p1, LockMode::Shared, 1, false);
        assert_eq!(t.waiters_of(p1).len(), 1);
        t.grant(p1, TaskId(1)).unwrap();
        t.request_lock(TaskId(1), p1, LockMode::Shared, 2, false);
        assert!(t.waiters_of(p1).is_empty(), "already held: no new request");
    }

    #[test]
    fn waits_for_edges_include_containment() {
        let (mut t, dc, p1, _) = setup();
        t.request_lock(TaskId(1), p1, LockMode::Exclusive, 0, false);
        t.grant(p1, TaskId(1)).unwrap();
        t.request_lock(TaskId(2), dc, LockMode::Exclusive, 1, false);
        let edges = t.waits_for_edges();
        assert!(edges.contains(&(TaskId(2), TaskId(1))));
    }

    #[test]
    fn deadlock_cycle_detected() {
        let (mut t, _, p1, p2) = setup();
        // t1 holds p1, waits p2; t2 holds p2, waits p1.
        t.request_lock(TaskId(1), p1, LockMode::Exclusive, 0, false);
        t.grant(p1, TaskId(1)).unwrap();
        t.request_lock(TaskId(2), p2, LockMode::Exclusive, 1, false);
        t.grant(p2, TaskId(2)).unwrap();
        t.request_lock(TaskId(1), p2, LockMode::Exclusive, 2, false);
        t.request_lock(TaskId(2), p1, LockMode::Exclusive, 3, false);
        let cycle = t.find_deadlock_cycle().expect("deadlock exists");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&TaskId(1)) && cycle.contains(&TaskId(2)));
        // Breaking the cycle by aborting one task clears it.
        t.release_task(TaskId(2));
        assert!(t.find_deadlock_cycle().is_none());
    }

    #[test]
    fn no_deadlock_without_cycle() {
        let (mut t, _, p1, p2) = setup();
        t.request_lock(TaskId(1), p1, LockMode::Exclusive, 0, false);
        t.grant(p1, TaskId(1)).unwrap();
        t.request_lock(TaskId(2), p1, LockMode::Exclusive, 1, false);
        t.request_lock(TaskId(3), p2, LockMode::Exclusive, 2, false);
        assert!(t.find_deadlock_cycle().is_none());
    }

    #[test]
    fn grant_without_request_returns_none() {
        let (mut t, _, p1, _) = setup();
        assert_eq!(t.grant(p1, TaskId(9)), None);
    }

    /// The incremental waiter index mirrors the actual waiter lists across
    /// request/grant/release.
    #[test]
    fn waiter_index_tracks_lock_lifecycle() {
        let (mut t, dc, p1, p2) = setup();
        assert!(t.nodes_with_waiters().is_empty());
        t.request_lock(TaskId(1), p1, LockMode::Exclusive, 0, false);
        t.request_lock(TaskId(2), p1, LockMode::Exclusive, 1, false);
        t.request_lock(TaskId(3), p2, LockMode::Shared, 2, false);
        assert_eq!(t.nodes_with_waiters(), vec![p1, p2]);
        // Granting task 1 leaves task 2 waiting on p1.
        t.grant(p1, TaskId(1)).unwrap();
        assert_eq!(t.nodes_with_waiters(), vec![p1, p2]);
        // Granting the last waiter empties p2's entry.
        t.grant(p2, TaskId(3)).unwrap();
        assert_eq!(t.nodes_with_waiters(), vec![p1]);
        // Releasing the waiting task drops its pending request.
        t.release_task(TaskId(2));
        assert!(t.nodes_with_waiters().is_empty());
        // dc never had a waiter.
        let _ = dc;
    }
}
