//! A bounded cache of region relations keyed by pattern fingerprints.
//!
//! The object tree probes the same (region, region) pairs over and over:
//! every insert descends past the same siblings, every validate re-checks
//! the same parent/child pairs, and production workloads draw regions from
//! a small vocabulary of scopes. Since [`Pattern::fingerprint`] identifies
//! a *language* (not a source string), one cached [`Relation`] answers the
//! probe for every syntactic variant of the same pair — in either order,
//! thanks to [`Relation::flip`].

use occam_obs::{Counter, Registry};
use occam_regex::{Pattern, Relation};
use std::collections::{HashMap, VecDeque};

/// Default capacity: enough for every pair in a production-scale tree of
/// a few hundred distinct regions.
const DEFAULT_CAP: usize = 4096;

/// Hit/miss counters for a [`RelationCache`].
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct RelCacheStats {
    /// Probes answered without a product walk (cached pair, or equal
    /// fingerprints short-circuiting to `Relation::Equal`).
    pub hits: u64,
    /// Probes that ran the single-pass relation walk.
    pub misses: u64,
    /// Entries discarded to respect the capacity bound.
    pub evictions: u64,
}

impl RelCacheStats {
    /// Fraction of probes served from the cache (0 when unused).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Bounded FIFO-evicting map from unordered fingerprint pairs to their
/// [`Relation`].
#[derive(Debug)]
pub struct RelationCache {
    map: HashMap<(u128, u128), Relation>,
    /// Insertion order for FIFO eviction; holds exactly the map's keys.
    order: VecDeque<(u128, u128)>,
    cap: usize,
    stats: RelCacheStats,
    /// Registry-bound mirrors of `stats` (`objtree.relate_cache.*`); no-op
    /// private counters unless built via [`RelationCache::with_obs`].
    obs_hits: Counter,
    obs_misses: Counter,
    obs_evictions: Counter,
}

impl RelationCache {
    /// A cache with the default capacity.
    pub fn new() -> RelationCache {
        RelationCache::with_capacity(DEFAULT_CAP)
    }

    /// A cache bounded to `cap` pairs (min 1).
    pub fn with_capacity(cap: usize) -> RelationCache {
        RelationCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
            stats: RelCacheStats::default(),
            obs_hits: Counter::new(),
            obs_misses: Counter::new(),
            obs_evictions: Counter::new(),
        }
    }

    /// A default-capacity cache whose `objtree.relate_cache.*` counters
    /// are bound to `reg` (DESIGN.md §9).
    pub fn with_obs(reg: &Registry) -> RelationCache {
        let mut c = RelationCache::new();
        c.obs_hits = reg.counter("objtree.relate_cache.hits");
        c.obs_misses = reg.counter("objtree.relate_cache.misses");
        c.obs_evictions = reg.counter("objtree.relate_cache.evictions");
        c
    }

    /// Relates `a` to `b`, consulting the cache first.
    ///
    /// The key is the *unordered* fingerprint pair: a result computed for
    /// `(a, b)` also answers `(b, a)` via [`Relation::flip`]. Equal
    /// fingerprints mean equal languages and short-circuit without any
    /// walk or cache entry.
    pub fn relate(&mut self, a: &Pattern, b: &Pattern) -> Relation {
        let (fa, fb) = (a.fingerprint(), b.fingerprint());
        if fa == fb {
            self.stats.hits += 1;
            self.obs_hits.inc();
            return Relation::Equal;
        }
        let flipped = fa > fb;
        let key = if flipped { (fb, fa) } else { (fa, fb) };
        if let Some(&rel) = self.map.get(&key) {
            self.stats.hits += 1;
            self.obs_hits.inc();
            return if flipped { rel.flip() } else { rel };
        }
        self.stats.misses += 1;
        self.obs_misses.inc();
        let rel = a.relate(b);
        let canonical = if flipped { rel.flip() } else { rel };
        if self.map.len() >= self.cap {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
                self.stats.evictions += 1;
                self.obs_evictions.inc();
            }
        }
        self.map.insert(key, canonical);
        self.order.push_back(key);
        rel
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> RelCacheStats {
        self.stats
    }
}

impl Default for RelationCache {
    fn default() -> Self {
        RelationCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(re: &str) -> Pattern {
        Pattern::new(re).unwrap()
    }

    #[test]
    fn second_probe_hits_either_order() {
        let mut c = RelationCache::new();
        let a = pat(r"dc1\..*");
        let b = pat(r"dc1\.pod3\..*");
        assert_eq!(c.relate(&a, &b), Relation::ProperSuperset);
        assert_eq!(
            c.stats(),
            RelCacheStats {
                hits: 0,
                misses: 1,
                evictions: 0
            }
        );
        assert_eq!(c.relate(&a, &b), Relation::ProperSuperset);
        assert_eq!(c.relate(&b, &a), Relation::ProperSubset);
        assert_eq!(
            c.stats(),
            RelCacheStats {
                hits: 2,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn equal_fingerprints_short_circuit() {
        let mut c = RelationCache::new();
        let a = Pattern::from_glob("dc1.pod3.*").unwrap();
        let b = pat(r"dc1\.pod3\..*"); // same language, different source
        assert_eq!(c.relate(&a, &b), Relation::Equal);
        assert_eq!(c.stats().misses, 0);
        assert_eq!(c.len(), 0, "equality needs no cache entry");
    }

    #[test]
    fn syntactic_variants_share_entries() {
        let mut c = RelationCache::new();
        let big = pat(r"dc1\..*");
        let small1 = pat(r"dc1\.pod3\..*");
        let small2 = Pattern::from_glob("dc1.pod3.*").unwrap();
        c.relate(&big, &small1);
        // Different Pattern value, same language → hit.
        assert_eq!(c.relate(&big, &small2), Relation::ProperSuperset);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = RelationCache::with_capacity(2);
        let pats: Vec<Pattern> = (0..4).map(|i| pat(&format!(r"dc{i}\..*"))).collect();
        c.relate(&pats[0], &pats[1]);
        c.relate(&pats[0], &pats[2]);
        c.relate(&pats[0], &pats[3]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        // The oldest pair was evicted; re-probing it misses again.
        let before = c.stats().misses;
        c.relate(&pats[0], &pats[1]);
        assert_eq!(c.stats().misses, before + 1);
    }
}
