//! # occam-objtree
//!
//! The network object tree and multi-granularity locking layer of the
//! Occam reproduction (paper §4).
//!
//! Active management regions form a tree — a *laminar family* over the
//! device-name space upholding two invariants: a parent strictly contains
//! each child, and siblings are pairwise disjoint. `INSERT` (with `SPLIT`
//! for overlapping regions) and reference-counted `DELETE` implement
//! Figure 4 of the paper on top of the regex algebra in [`occam_regex`].
//!
//! Lock state lives on the nodes: held S/X locks and pending IS/IX
//! requests, together forming the object/task dependency graph. The crate
//! provides compatibility checks (including containment conflicts),
//! grant/release, waits-for edges, and deadlock-cycle detection; *policy*
//! (which waiter to grant to) lives in `occam-sched`.
//!
//! # Examples
//!
//! ```
//! use occam_objtree::{LockMode, ObjTree, TaskId};
//! use occam_regex::Pattern;
//!
//! let mut tree = ObjTree::new();
//! let dc = tree.insert_region(&Pattern::from_glob("dc01.*").unwrap())[0];
//! let pod = tree.insert_region(&Pattern::from_glob("dc01.pod03.*").unwrap())[0];
//!
//! // An X lock on the pod blocks the whole-DC task (containment conflict).
//! tree.request_lock(TaskId(1), pod, LockMode::Exclusive, 0, false);
//! tree.grant(pod, TaskId(1));
//! assert!(!tree.can_grant(dc, TaskId(2), LockMode::Exclusive));
//! ```

pub mod lock;
pub mod relcache;
pub mod tree;
pub mod types;

pub use relcache::{RelCacheStats, RelationCache};
pub use tree::{Node, ObjTree, SplitMode, TreeStats};
pub use types::{LockMode, LockRequest, ObjectId, TaskId};
