//! Acceptance test for the single-pass relation engine: `insert_at`
//! performs exactly one relation walk per child probe, and repeated probes
//! are served from the fingerprint-keyed relation cache.
//!
//! This file deliberately holds a single `#[test]`: the walk counter
//! ([`occam_regex::product_ops`]) is process-global, so parallel tests in
//! the same binary would pollute the exact counts asserted here.

use occam_objtree::ObjTree;
use occam_regex::{product_ops, Pattern};

#[test]
fn insert_probes_cost_one_walk_each_and_cached_probes_cost_none() {
    let mut tree = ObjTree::new();
    // Seed four disjoint pods under the root.
    for p in 0..4 {
        tree.insert_region(&Pattern::from_glob(&format!("dc01.pod0{p}.*")).unwrap());
    }

    // Inserting a fifth disjoint pod probes each existing child exactly
    // once, and every probe is a cache miss: exactly one product walk per
    // child, where the old equivalent/contains/contains/overlaps chain
    // would have cost up to four.
    let before = product_ops();
    tree.insert_region(&Pattern::from_glob("dc01.pod04.*").unwrap());
    assert_eq!(
        product_ops() - before,
        4,
        "one relation walk per child probe"
    );

    // Re-inserting the same region probes all five children again, but the
    // four disjoint pairs are cached and the equal pair short-circuits on
    // fingerprint equality: zero walks.
    let before = product_ops();
    let cover = tree.insert_region(&Pattern::from_glob("dc01.pod04.*").unwrap());
    assert_eq!(product_ops() - before, 0, "cached probes need no walk");
    assert_eq!(cover.len(), 1, "existing node is reused");

    let stats = tree.relate_cache_stats();
    assert_eq!(stats.misses, 4 + 3 + 2 + 1, "one miss per first-time pair");
    assert!(stats.hits >= 5, "repeat probes hit the cache");
}
