//! Property tests: object-tree invariants under random insert/release
//! sequences, and locking safety under random request/grant/release
//! schedules.

use occam_objtree::{LockMode, ObjTree, ObjectId, SplitMode, TaskId};
use occam_regex::Pattern;
use proptest::prelude::*;

/// Random region scopes over a small dc/pod space so collisions (equal,
/// contained, overlapping, disjoint) all occur.
fn arb_region() -> impl Strategy<Value = String> {
    prop_oneof![
        (1u32..3).prop_map(|dc| format!(r"dc0{dc}\..*")),
        (1u32..3, 0u32..6).prop_map(|(dc, p)| format!(r"dc0{dc}\.pod{p}\..*")),
        (1u32..3, 0u32..5, 1u32..5).prop_map(|(dc, lo, w)| {
            let hi = (lo + w).min(8);
            format!(r"dc0{dc}\.pod[{lo}-{hi}]\..*")
        }),
        (1u32..3, 0u32..6, 0u32..4).prop_map(|(dc, p, s)| format!(r"dc0{dc}\.pod{p}\.sw0{s}")),
    ]
}

#[derive(Clone, Debug)]
enum Op {
    Insert(String),
    Release(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => arb_region().prop_map(Op::Insert),
            1 => (0usize..32).prop_map(Op::Release),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The laminar-family invariants hold after every operation, and every
    /// insert's covering set exactly covers the requested region.
    #[test]
    fn tree_invariants_hold(ops in arb_ops()) {
        let mut tree = ObjTree::new();
        let mut live: Vec<ObjectId> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(src) => {
                    let region = Pattern::new(&src).unwrap();
                    let cover = tree.insert_region(&region);
                    // Covering nodes union to the region and are disjoint
                    // from each other.
                    let mut union = Pattern::new("[]").unwrap();
                    for (i, &a) in cover.iter().enumerate() {
                        let ra = tree.node(a).unwrap().region.clone();
                        for &b in &cover[i + 1..] {
                            let rb = &tree.node(b).unwrap().region;
                            prop_assert!(!ra.overlaps(rb),
                                "covering nodes overlap for {src}");
                        }
                        union = union.union(&ra);
                    }
                    prop_assert!(union.equivalent(&region),
                        "covering set does not equal region {src}");
                    live.extend(cover);
                }
                Op::Release(i) => {
                    if !live.is_empty() {
                        let id = live.swap_remove(i % live.len());
                        tree.release_ref(id);
                    }
                }
            }
            if let Err(e) = tree.validate() {
                return Err(TestCaseError::fail(format!("invariant broken: {e}")));
            }
        }
        // Releasing everything returns the tree to just the root.
        for id in live {
            tree.release_ref(id);
        }
        prop_assert!(tree.validate().is_ok());
        prop_assert!(tree.is_empty(), "leaked {} nodes", tree.len() - 1);
    }

    /// The laminar-family invariants also hold in the Coarsen ablation,
    /// where inserts over-lock by swallowing overlapping siblings: the
    /// covering set must *contain* the requested region (instead of
    /// equalling it) and `validate()` must pass after every operation.
    #[test]
    fn tree_invariants_hold_in_coarsen_mode(ops in arb_ops()) {
        let mut tree = ObjTree::with_mode(SplitMode::Coarsen);
        let mut live: Vec<ObjectId> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(src) => {
                    let region = Pattern::new(&src).unwrap();
                    let cover = tree.insert_region(&region);
                    let mut union = Pattern::new("[]").unwrap();
                    for &a in &cover {
                        union = union.union(&tree.node(a).unwrap().region.clone());
                    }
                    prop_assert!(region.is_empty() || union.contains(&region),
                        "coarsened covering set does not contain {src}");
                    live.extend(cover);
                }
                Op::Release(i) => {
                    if !live.is_empty() {
                        let id = live.swap_remove(i % live.len());
                        tree.release_ref(id);
                    }
                }
            }
            if let Err(e) = tree.validate() {
                return Err(TestCaseError::fail(format!("invariant broken: {e}")));
            }
        }
        for id in live {
            tree.release_ref(id);
        }
        prop_assert!(tree.validate().is_ok());
        prop_assert!(tree.is_empty(), "leaked {} nodes", tree.len() - 1);
    }

    /// Lock safety: if the scheduler only grants when `can_grant` holds,
    /// then at no point do two tasks hold conflicting locks on overlapping
    /// regions.
    #[test]
    fn locking_never_admits_conflicts(
        regions in proptest::collection::vec(arb_region(), 2..8),
        grants in proptest::collection::vec((0usize..8, any::<bool>()), 1..30),
    ) {
        let mut tree = ObjTree::new();
        let mut objs: Vec<ObjectId> = Vec::new();
        for r in &regions {
            objs.extend(tree.insert_region(&Pattern::new(r).unwrap()));
        }
        for (arrival, (i, exclusive)) in grants.into_iter().enumerate() {
            let task = TaskId((i % 4) as u64);
            let obj = objs[i % objs.len()];
            let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
            tree.request_lock(task, obj, mode, arrival as u64, false);
            if tree.can_grant(obj, task, mode) {
                tree.grant(obj, task);
            }
            // Safety check over all pairs of holders on overlapping nodes.
            let ids: Vec<ObjectId> = tree.node_ids().collect();
            for &a in &ids {
                for &b in &ids {
                    let ra = &tree.node(a).unwrap().region;
                    let rb = &tree.node(b).unwrap().region;
                    if !ra.overlaps(rb) {
                        continue;
                    }
                    for &(t1, m1) in tree.holders_of(a) {
                        for &(t2, m2) in tree.holders_of(b) {
                            if t1 != t2 {
                                prop_assert!(
                                    m1.compatible(m2),
                                    "conflicting holders {t1:?}/{t2:?} on overlapping regions"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Releasing a task always clears every edge it had.
    #[test]
    fn release_is_complete(
        regions in proptest::collection::vec(arb_region(), 2..6),
        reqs in proptest::collection::vec((0usize..6, any::<bool>()), 1..20),
    ) {
        let mut tree = ObjTree::new();
        let mut objs: Vec<ObjectId> = Vec::new();
        for r in &regions {
            objs.extend(tree.insert_region(&Pattern::new(r).unwrap()));
        }
        for (n, (i, exclusive)) in reqs.iter().enumerate() {
            let task = TaskId((i % 3) as u64);
            let obj = objs[i % objs.len()];
            let mode = if *exclusive { LockMode::Exclusive } else { LockMode::Shared };
            tree.request_lock(task, obj, mode, n as u64, false);
            if tree.can_grant(obj, task, mode) {
                tree.grant(obj, task);
            }
        }
        for t in 0..3u64 {
            tree.release_task(TaskId(t));
        }
        for id in tree.node_ids().collect::<Vec<_>>() {
            prop_assert!(tree.holders_of(id).is_empty());
            prop_assert!(tree.waiters_of(id).is_empty());
        }
        prop_assert!(tree.active_tasks().is_empty());
    }
}
