//! Soundness property for the online certifier: any history it accepts
//! in full (no violation on any commit) must actually be serializable,
//! as judged by a brute-force permutation oracle.
//!
//! The oracle tries every serial order of the tasks (histories are kept
//! to <= 5 tasks, so <= 120 permutations). Replaying one order applies
//! each task's ops sorted by commit count (writes before reads on count
//! ties, matching read-your-own-write semantics); a read of pattern `p`
//! at count `a` must then observe, for every written row matching `p`,
//! the write with the greatest count `<= a` — or the initial state if
//! none qualifies. If some permutation satisfies every read, the
//! history is serializable.

use occam_cert::{Certifier, Footprint};
use occam_regex::Pattern;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// One generated task: reads as `(glob, at-count)`, writes as
/// `(row, count)`.
#[derive(Clone, Debug)]
struct TaskOps {
    reads: Vec<(String, u64)>,
    writes: Vec<(String, u64)>,
}

fn arb_row() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string())
    ]
}

fn arb_read() -> impl Strategy<Value = (String, u64)> {
    (
        prop_oneof![3 => arb_row(), 1 => Just("*".to_string())],
        0u64..8,
    )
}

fn arb_write() -> impl Strategy<Value = (String, u64)> {
    // Writes strictly exceed the floor (0 here), per the begin contract.
    (arb_row(), 1u64..9)
}

fn arb_task() -> impl Strategy<Value = TaskOps> {
    (
        proptest::collection::vec(arb_read(), 0..3),
        proptest::collection::vec(arb_write(), 0..3),
    )
        .prop_map(|(reads, writes)| TaskOps { reads, writes })
}

/// The expected observation for row `row` at snapshot count `at`: the
/// greatest write count `<= at` across the whole history, or 0 (initial
/// state) if the row had not yet been written.
fn expected_at(all_writes: &BTreeMap<String, Vec<u64>>, row: &str, at: u64) -> u64 {
    all_writes
        .get(row)
        .into_iter()
        .flatten()
        .copied()
        .filter(|&c| c <= at)
        .max()
        .unwrap_or(0)
}

/// Replays `tasks` in the order given by `perm` and checks every read.
fn replay_consistent(
    perm: &[usize],
    tasks: &[TaskOps],
    all_writes: &BTreeMap<String, Vec<u64>>,
    written: &BTreeSet<String>,
) -> bool {
    // Row -> count of the last applied write (0 = initial state).
    let mut val: BTreeMap<&str, u64> = written.iter().map(|r| (r.as_str(), 0)).collect();
    for &i in perm {
        let t = &tasks[i];
        // (count, 0=write / 1=read, op index): a task's own ops replay
        // in count order, writes first on ties.
        let mut ops: Vec<(u64, u8, usize)> = Vec::new();
        for (k, (_, c)) in t.writes.iter().enumerate() {
            ops.push((*c, 0, k));
        }
        for (k, (_, a)) in t.reads.iter().enumerate() {
            ops.push((*a, 1, k));
        }
        ops.sort();
        for (count, kind, k) in ops {
            if kind == 0 {
                let (row, _) = &t.writes[k];
                val.insert(row.as_str(), count);
            } else {
                let (glob, _) = &t.reads[k];
                let pat = Pattern::from_glob(glob).unwrap();
                for row in written {
                    if pat.matches(row) && val[row.as_str()] != expected_at(all_writes, row, count)
                    {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// True if some serial order of `tasks` reproduces every read.
fn oracle_serializable(tasks: &[TaskOps]) -> bool {
    let mut all_writes: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for t in tasks {
        for (row, c) in &t.writes {
            all_writes.entry(row.clone()).or_default().push(*c);
        }
    }
    let written: BTreeSet<String> = all_writes.keys().cloned().collect();
    let mut perm: Vec<usize> = (0..tasks.len()).collect();
    // Heap's algorithm, iterative.
    let n = perm.len();
    let mut c = vec![0usize; n];
    if replay_consistent(&perm, tasks, &all_writes, &written) {
        return true;
    }
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            if replay_consistent(&perm, tasks, &all_writes, &written) {
                return true;
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Certifier soundness: a fully-accepted history admits a serial
    /// order under the permutation oracle, and (with nothing left in
    /// flight) the acyclic window drains completely.
    #[test]
    fn accepted_histories_are_serializable(
        tasks in proptest::collection::vec(arb_task(), 2..6),
    ) {
        let cert = Certifier::new();
        // All tasks run concurrently: begin every token before any
        // commit, each at floor 0 (the initial commit count).
        let tokens: Vec<_> = (0..tasks.len())
            .map(|i| cert.begin(&format!("t{i}"), 0))
            .collect();
        let mut all_ok = true;
        for (tok, t) in tokens.into_iter().zip(&tasks) {
            let mut f = Footprint::new();
            for (glob, at) in &t.reads {
                f.read(Pattern::from_glob(glob).unwrap(), *at);
            }
            for (row, c) in &t.writes {
                f.write(row.clone(), *c);
            }
            if cert.commit(tok, f).is_err() {
                all_ok = false;
            }
        }
        if all_ok {
            prop_assert!(
                oracle_serializable(&tasks),
                "certifier accepted a non-serializable history: {tasks:?}"
            );
            // Acyclic + nothing in flight: every node retires.
            prop_assert_eq!(cert.window_len(), 0);
        } else {
            prop_assert!(cert.violations() > 0);
            prop_assert!(!cert.is_acyclic());
        }
    }
}
