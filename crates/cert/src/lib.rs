//! # occam-cert
//!
//! Online serializability certification for the Occam runtime, after
//! "Deciding Serializability in Network Systems" (PAPERS.md): instead of
//! *assuming* the concurrency control (strict 2PL, or the OCC fast
//! path) preserves serializability, every committed task emits a
//! **footprint** — its reads as `(scope pattern, commit count observed)`
//! pairs and its writes as `(device row, commit count)` pairs anchored
//! to WAL commit order — and the certifier maintains the transaction
//! conflict graph online, asserting acyclicity at every commit.
//!
//! ## The model
//!
//! The netdb publishes a totally ordered sequence of commits; commit
//! count `c` names the state containing exactly the first `c` batches.
//! A read served from a consistent snapshot with `c` commits observes,
//! for every row, the write with the greatest count `≤ c`. Under that
//! model the conflict edges between two committed tasks are fully
//! determined by their footprints:
//!
//! - **write → read** (`W` before `R`): `W` wrote a row matching `R`'s
//!   pattern with `w.count <= r.at` — the read observed the write;
//! - **read → write** (`R` before `W`): same overlap with
//!   `w.count > r.at` — the read did *not* observe the write;
//! - **write → write**: two tasks wrote the same row; the edge follows
//!   count order.
//!
//! Reads carry patterns (PR 1's regex engine answers the row-overlap
//! queries); writes are concrete rows, which keeps write/write conflicts
//! exact instead of pattern-coarse. **Acyclicity of this graph implies
//! the history is serializable**: replaying tasks in topological order
//! (each task's own ops in count order) reproduces every recorded
//! observation — the property test in this crate cross-checks exactly
//! that against a brute-force permutation oracle.
//!
//! ## Windowing
//!
//! The graph would otherwise grow without bound, so committed nodes are
//! retired once no future cycle can pass through them. Every task
//! registers at [`Certifier::begin`] with a *floor* — the database
//! commit count when it starts, which bounds its eventual footprint:
//! reads observe counts `>= floor`, writes commit at counts `> floor`.
//! A retained node `R` is retired once (a) every in-flight floor is
//! `>= R.hi` (its greatest op count) and (b) no retained node has an
//! edge into `R`. Any *future* edge `T -> R` needs an op of `T` at or
//! below `R.hi` — a write→read or write→write edge needs
//! `t.count <= R.hi < t.count` (writes strictly exceed the floor), a
//! read→write edge needs `t.at < R.w.count <= R.hi <= t.at` — both
//! contradictions, so in-edges can never appear after retirement, and a
//! node with no in-edges can sit on no cycle. Only real edges are ever
//! materialized — fabricating summary edges for disjoint pairs could
//! manufacture false cycles.
//!
//! Certification covers the tasks that register with the certifier;
//! writers that bypass it (e.g. raw database calls) appear only through
//! the commit counts they advance.

#![deny(missing_docs)]

use occam_obs::{Counter, EventKind, EventRing, Histogram, Registry, Span};
use occam_regex::Pattern;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// One recorded read: a scope pattern observed at a commit count.
#[derive(Clone, Debug)]
pub struct ReadRec {
    /// The device-name pattern the read was scoped to.
    pub pattern: Pattern,
    /// Commit count of the consistent snapshot that served the read.
    pub at: u64,
}

/// One recorded write: a concrete device row at a commit count.
#[derive(Clone, Debug)]
pub struct WriteRec {
    /// The device row written (for link writes, each endpoint).
    pub row: String,
    /// Commit count at which the write became visible (WAL seq + 1).
    pub count: u64,
}

/// The read/write footprint of one committed task.
#[derive(Clone, Default, Debug)]
pub struct Footprint {
    /// Reads, in execution order.
    pub reads: Vec<ReadRec>,
    /// Writes, in execution order.
    pub writes: Vec<WriteRec>,
}

impl Footprint {
    /// An empty footprint.
    pub fn new() -> Footprint {
        Footprint::default()
    }

    /// Records one read of `pattern` served at commit count `at`.
    pub fn read(&mut self, pattern: Pattern, at: u64) {
        self.reads.push(ReadRec { pattern, at });
    }

    /// Records one write of `row` visible at commit count `count`.
    pub fn write(&mut self, row: impl Into<String>, count: u64) {
        self.writes.push(WriteRec {
            row: row.into(),
            count,
        });
    }

    /// True if the task recorded no reads and no writes.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

/// Handle for one in-flight task, returned by [`Certifier::begin`].
/// Consumed by [`Certifier::commit`] or [`Certifier::abandon`];
/// deliberately neither `Clone` nor `Copy`.
#[derive(Debug)]
pub struct TaskToken {
    id: u64,
}

#[derive(Debug)]
struct Node {
    name: String,
    reads: Vec<ReadRec>,
    writes: Vec<WriteRec>,
    /// Greatest op count in the footprint; retirement compares this
    /// against the in-flight floor.
    hi: u64,
    /// Outgoing conflict edges (node ids).
    out: Vec<u64>,
}

#[derive(Default, Debug)]
struct Inner {
    next_id: u64,
    nodes: BTreeMap<u64, Node>,
    /// In-flight tokens: id → floor.
    inflight: BTreeMap<u64, (String, u64)>,
    violations: u64,
    first_violation: Option<String>,
    retired: u64,
    committed: u64,
}

/// Observability handles bound under the `cert.*` names (DESIGN.md §9).
#[derive(Clone, Debug)]
struct CertObs {
    tasks: Counter,
    commits: Counter,
    aborts: Counter,
    edges: Counter,
    retired: Counter,
    violations: Counter,
    window: Histogram,
    check_ns: Histogram,
    events: EventRing,
}

impl CertObs {
    fn bound(reg: &Registry) -> CertObs {
        CertObs {
            tasks: reg.counter("cert.tasks"),
            commits: reg.counter("cert.commits"),
            aborts: reg.counter("cert.aborts"),
            edges: reg.counter("cert.edges"),
            retired: reg.counter("cert.retired"),
            violations: reg.counter("cert.violations"),
            window: reg.histogram("cert.window"),
            check_ns: reg.histogram("cert.check_ns"),
            events: reg.events(),
        }
    }
}

/// The online serializability certifier: a windowed conflict graph over
/// committed task footprints, checked for acyclicity at every commit.
///
/// Thread-safe; the runtime shares one behind an `Arc` across every
/// worker. See the crate docs for the conflict model and the soundness
/// argument.
#[derive(Debug)]
pub struct Certifier {
    inner: Mutex<Inner>,
    obs: CertObs,
}

impl Default for Certifier {
    fn default() -> Self {
        Certifier::new()
    }
}

impl Certifier {
    /// A certifier with a private metrics registry.
    pub fn new() -> Certifier {
        Certifier::with_obs(&Registry::new())
    }

    /// A certifier whose `cert.*` instruments are bound to `reg`.
    pub fn with_obs(reg: &Registry) -> Certifier {
        Certifier {
            inner: Mutex::new(Inner::default()),
            obs: CertObs::bound(reg),
        }
    }

    /// Registers an in-flight task. `floor` must be at or below every
    /// commit count the task's eventual footprint can contain — the
    /// commit count of the database when the task starts satisfies this
    /// (reads observe counts `>= floor`; writes commit at counts
    /// `> floor`). The token pins the retirement watermark until the
    /// task [`Certifier::commit`]s or is [`Certifier::abandon`]ed.
    pub fn begin(&self, name: &str, floor: u64) -> TaskToken {
        self.obs.tasks.inc();
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.inflight.insert(id, (name.to_string(), floor));
        TaskToken { id }
    }

    /// Drops an in-flight task that aborted without committing: its
    /// footprint never enters the graph, and the watermark it pinned is
    /// released.
    pub fn abandon(&self, token: TaskToken) {
        self.obs.aborts.inc();
        let mut inner = self.inner.lock();
        inner.inflight.remove(&token.id);
        Self::retire(&mut inner, &self.obs);
    }

    /// Ingests the footprint of a committed task: computes the real
    /// conflict edges against every retained node, checks that no cycle
    /// runs through the new node, then advances the retirement
    /// watermark. Returns the cycle description on violation (which is
    /// also counted and latched — see [`Certifier::violations`]).
    pub fn commit(&self, token: TaskToken, footprint: Footprint) -> Result<(), String> {
        let span = Span::start(&self.obs.check_ns);
        let mut inner = self.inner.lock();
        let (name, _floor) = inner
            .inflight
            .remove(&token.id)
            .expect("token is single-use");
        inner.committed += 1;
        self.obs.commits.inc();
        if footprint.is_empty() {
            Self::retire(&mut inner, &self.obs);
            span.finish();
            return Ok(());
        }
        let hi = footprint
            .reads
            .iter()
            .map(|r| r.at)
            .chain(footprint.writes.iter().map(|w| w.count))
            .max()
            .expect("non-empty footprint");
        let node = Node {
            name,
            reads: footprint.reads,
            writes: footprint.writes,
            hi,
            out: Vec::new(),
        };
        let id = token.id;
        // Real edges only, both directions, against every retained node.
        let mut node = node;
        let mut back_ids: Vec<u64> = Vec::new();
        let mut edges_added = 0u64;
        for (&other_id, other) in inner.nodes.iter() {
            let (fwd, back) = conflict_edges(&node, other);
            if fwd {
                node.out.push(other_id);
                edges_added += 1;
            }
            if back {
                back_ids.push(other_id);
                edges_added += 1;
            }
        }
        for i in &back_ids {
            inner.nodes.get_mut(i).expect("retained").out.push(id);
        }
        inner.nodes.insert(id, node);
        self.obs.edges.add(edges_added);
        self.obs.window.record(inner.nodes.len() as u64);

        let result = match find_cycle(&inner.nodes, id) {
            None => Ok(()),
            Some(path) => {
                let desc = format!(
                    "serializability violation: conflict cycle {}",
                    path.iter()
                        .map(|i| inner.nodes[i].name.as_str())
                        .collect::<Vec<_>>()
                        .join(" -> ")
                );
                inner.violations += 1;
                if inner.first_violation.is_none() {
                    inner.first_violation = Some(desc.clone());
                }
                self.obs.violations.inc();
                self.obs.events.record(EventKind::CertViolation {
                    task: inner.nodes[&id].name.clone(),
                });
                Err(desc)
            }
        };
        Self::retire(&mut inner, &self.obs);
        span.finish();
        result
    }

    /// Retires every node no future cycle can pass through (see crate
    /// docs): in-flight floors must have moved past its `hi`, and no
    /// retained node may hold an edge into it. Iterates because removing
    /// one node can strip the last in-edge of another.
    fn retire(inner: &mut Inner, obs: &CertObs) {
        let floor = inner
            .inflight
            .values()
            .map(|(_, f)| *f)
            .min()
            .unwrap_or(u64::MAX);
        loop {
            let mut has_in: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
            for n in inner.nodes.values() {
                has_in.extend(n.out.iter().copied());
            }
            let Some(cand) = inner
                .nodes
                .iter()
                .find(|(i, n)| n.hi <= floor && !has_in.contains(i))
                .map(|(&i, _)| i)
            else {
                break;
            };
            inner.nodes.remove(&cand);
            for n in inner.nodes.values_mut() {
                n.out.retain(|&o| o != cand);
            }
            inner.retired += 1;
            obs.retired.inc();
        }
    }

    /// Number of violations detected so far. `0` means every committed
    /// history prefix was certified serializable.
    pub fn violations(&self) -> u64 {
        self.inner.lock().violations
    }

    /// The first detected violation, if any.
    pub fn first_violation(&self) -> Option<String> {
        self.inner.lock().first_violation.clone()
    }

    /// True if no violation has been detected.
    pub fn is_acyclic(&self) -> bool {
        self.violations() == 0
    }

    /// Number of committed footprints ingested.
    pub fn committed(&self) -> u64 {
        self.inner.lock().committed
    }

    /// Nodes currently retained in the window.
    pub fn window_len(&self) -> usize {
        self.inner.lock().nodes.len()
    }

    /// Nodes retired from the window so far.
    pub fn retired(&self) -> u64 {
        self.inner.lock().retired
    }
}

/// The conflict edges between two committed tasks, as
/// `(a → b, b → a)`. See the crate docs for the three rules.
fn conflict_edges(a: &Node, b: &Node) -> (bool, bool) {
    let mut ab = false;
    let mut ba = false;
    for w in &a.writes {
        for r in &b.reads {
            if r.pattern.matches(&w.row) {
                if w.count <= r.at {
                    ab = true;
                } else {
                    ba = true;
                }
            }
        }
        for w2 in &b.writes {
            if w.row == w2.row {
                match w.count.cmp(&w2.count) {
                    std::cmp::Ordering::Less => ab = true,
                    std::cmp::Ordering::Greater => ba = true,
                    std::cmp::Ordering::Equal => {}
                }
            }
        }
    }
    for w in &b.writes {
        for r in &a.reads {
            if r.pattern.matches(&w.row) {
                if w.count <= r.at {
                    ba = true;
                } else {
                    ab = true;
                }
            }
        }
    }
    (ab, ba)
}

/// Depth-first search for a cycle through `start`. Edges are only ever
/// added touching a new node, so any new cycle must pass through it.
fn find_cycle(nodes: &BTreeMap<u64, Node>, start: u64) -> Option<Vec<u64>> {
    let mut stack: Vec<(u64, usize)> = vec![(start, 0)];
    let mut path: Vec<u64> = vec![start];
    let mut visited: std::collections::BTreeSet<u64> = [start].into();
    while let Some((node, next_edge)) = stack.last_mut() {
        let out = &nodes[node].out;
        if *next_edge >= out.len() {
            stack.pop();
            path.pop();
            continue;
        }
        let target = out[*next_edge];
        *next_edge += 1;
        if target == start {
            path.push(start);
            return Some(path);
        }
        if visited.insert(target) {
            stack.push((target, 0));
            path.push(target);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(row: &str) -> Pattern {
        Pattern::from_glob(row).unwrap()
    }

    fn commit_task(cert: &Certifier, name: &str, fp: Footprint) -> Result<(), String> {
        let t = cert.begin(name, 0);
        cert.commit(t, fp)
    }

    #[test]
    fn serial_history_is_acyclic() {
        let cert = Certifier::new();
        for i in 0..5u64 {
            let mut fp = Footprint::new();
            fp.read(lit("dc01.*"), i);
            fp.write("dc01.pod00.sw00", i + 1);
            commit_task(&cert, &format!("t{i}"), fp).unwrap();
        }
        assert!(cert.is_acyclic());
        assert_eq!(cert.committed(), 5);
    }

    #[test]
    fn lost_update_is_rejected() {
        // T1 and T2 run concurrently, both reading x at count 0; T1
        // writes x at 1, T2 overwrites at 2 without having seen T1's
        // write. Both begin before either commits, as their count-0
        // reads require.
        let cert = Certifier::new();
        let t1 = cert.begin("t1", 0);
        let t2 = cert.begin("t2", 0);
        let mut f1 = Footprint::new();
        f1.read(lit("x"), 0);
        f1.write("x", 1);
        cert.commit(t1, f1).unwrap();
        let mut f2 = Footprint::new();
        f2.read(lit("x"), 0);
        f2.write("x", 2);
        let err = cert.commit(t2, f2).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
        assert_eq!(cert.violations(), 1);
        assert_eq!(cert.first_violation().unwrap(), err);
    }

    #[test]
    fn write_skew_is_rejected() {
        // T1 reads {x,y} at 0, writes x at 1; T2 reads {x,y} at 0,
        // writes y at 2: the classic OCC-without-read-validation skew.
        let cert = Certifier::new();
        let t1 = cert.begin("t1", 0);
        let t2 = cert.begin("t2", 0);
        let mut f1 = Footprint::new();
        f1.read(lit("*"), 0);
        f1.write("x", 1);
        cert.commit(t1, f1).unwrap();
        let mut f2 = Footprint::new();
        f2.read(lit("*"), 0);
        f2.write("y", 2);
        assert!(cert.commit(t2, f2).is_err());
        assert!(!cert.is_acyclic());
    }

    #[test]
    fn disjoint_tasks_produce_no_edges_and_retire() {
        let cert = Certifier::new();
        for i in 0..10u64 {
            let mut fp = Footprint::new();
            fp.read(lit(&format!("row{i}")), i);
            fp.write(format!("row{i}"), i + 1);
            let t = cert.begin(&format!("t{i}"), i);
            cert.commit(t, fp).unwrap();
        }
        assert!(cert.is_acyclic());
        // With no in-flight tasks and disjoint climbing intervals, the
        // window retires all but the last node.
        assert!(cert.window_len() <= 2, "window: {}", cert.window_len());
        assert!(cert.retired() >= 8);
    }

    #[test]
    fn inflight_floor_pins_retirement() {
        let cert = Certifier::new();
        let pinned = cert.begin("slow", 0);
        for i in 0..5u64 {
            let mut fp = Footprint::new();
            fp.write(format!("row{i}"), i + 1);
            let t = cert.begin(&format!("t{i}"), i);
            cert.commit(t, fp).unwrap();
        }
        // The slow task's floor of 0 keeps every node retained: it could
        // still commit a footprint reaching back to count 0.
        assert_eq!(cert.window_len(), 5);
        // A stale read at count 0 overlapping row0's writer: the slow
        // task serializes before it — a real edge, no cycle.
        let mut fp = Footprint::new();
        fp.read(lit("row0"), 0);
        fp.write("other", 9);
        cert.commit(pinned, fp).unwrap();
        assert!(cert.is_acyclic());
        // Watermark released: the disjoint early nodes drain.
        assert!(cert.window_len() < 6);
    }

    #[test]
    fn abandon_releases_watermark() {
        let cert = Certifier::new();
        let t0 = cert.begin("doomed", 0);
        let mut fp = Footprint::new();
        fp.write("x", 1);
        let t1 = cert.begin("ok", 0);
        cert.commit(t1, fp).unwrap();
        assert_eq!(cert.window_len(), 1);
        cert.abandon(t0);
        // With nothing in flight and a single node, it may retire as
        // soon as another disjoint commit advances the watermark.
        let mut fp = Footprint::new();
        fp.write("y", 5);
        let t2 = cert.begin("later", 4);
        cert.commit(t2, fp).unwrap();
        assert!(cert.window_len() <= 2);
        assert!(cert.is_acyclic());
    }

    #[test]
    fn metrics_are_bound_and_counted() {
        let reg = Registry::new();
        let cert = Certifier::with_obs(&reg);
        let mut fp = Footprint::new();
        fp.read(lit("x"), 0);
        fp.write("x", 1);
        let t = cert.begin("t", 0);
        cert.commit(t, fp).unwrap();
        cert.abandon(cert.begin("a", 0));
        assert_eq!(reg.counter_value("cert.tasks"), 2);
        assert_eq!(reg.counter_value("cert.commits"), 1);
        assert_eq!(reg.counter_value("cert.aborts"), 1);
        assert_eq!(reg.counter_value("cert.violations"), 0);
    }
}
