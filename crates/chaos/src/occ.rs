//! Optimistic-concurrency chaos: a mixed OCC/2PL workload hammering one
//! contended counter, with the online serializability certifier
//! (DESIGN.md §16) attached as the oracle.
//!
//! Two seeded campaigns run over fresh substrates:
//!
//! 1. **Contended increments** — `writers × increments` read-modify-write
//!    tasks race on a single device attribute from multiple threads, half
//!    under [`Isolation::Occ`] (validation conflicts retry, then fall
//!    back to 2PL) and half under plain 2PL. The phase asserts the
//!    headline OCC safety property: the final counter equals the number
//!    of committed increments — **no lost updates** — and the certifier,
//!    fed every task's read/write footprint from both isolation paths,
//!    certifies the whole history acyclic.
//! 2. **Fallback under device faults** — sequential `Isolation::Occ`
//!    tasks whose program calls `apply()`. Device functions cannot be
//!    staged, so every task falls back to 2PL before touching a device,
//!    then runs under seeded transient device faults with retries. The
//!    phase asserts the fallback preserved every write (postconditions
//!    hold) and that exactly one fallback fired per task.
//!
//! Determinism: campaign 1 is multi-threaded, so the report carries only
//! interleaving-independent counts (task totals, the final counter, and
//! certifier verdicts — not conflict/retry counters). Campaign 2 is
//! single-threaded with a seeded fault stream, so its counts are exact.

use crate::report::OccChaosReport;
use occam_cert::Certifier;
use occam_core::{Isolation, RetryPolicy, Runtime, TaskError, TaskState};
use occam_emunet::{EmuNet, EmuService, FaultyService};
use occam_netdb::{attrs, AttrValue, Database, FaultPlan};
use occam_obs::Registry;
use occam_regex::Pattern;
use occam_sched::Policy;
use occam_topology::{FatTree, Role};
use std::sync::Arc;
use std::time::Duration;

/// Device-fault salt, distinct from the main campaign's streams.
const OCC_SALT: u64 = 0x0CC0_5EED_B00C_1E55;

/// The contended row both campaigns write.
const COUNTER_DEVICE: &str = "dc01.pod00.tor00";
/// The counter attribute.
const COUNTER_ATTR: &str = "OCC_COUNT";

/// Tuning for the OCC chaos phase.
#[derive(Clone, Debug)]
pub struct OccChaosConfig {
    /// Master seed for the fault stream.
    pub seed: u64,
    /// Concurrent writer threads in the contended-increment campaign.
    pub writers: u32,
    /// Increments per writer.
    pub increments: u32,
    /// Device-service fault probability in the fallback campaign.
    pub fault_rate: f64,
    /// Sequential fallback tasks in the faulted campaign.
    pub fallback_tasks: u32,
}

impl Default for OccChaosConfig {
    fn default() -> OccChaosConfig {
        OccChaosConfig {
            seed: 0x0CC,
            writers: 4,
            increments: 12,
            fault_rate: 0.08,
            fallback_tasks: 8,
        }
    }
}

/// One fresh substrate mirroring the main campaign's: a `FatTree(1, 4)`
/// fabric in a seeded database behind a faultable device service, with a
/// certifier attached to the runtime.
struct Substrate {
    reg: Registry,
    db: Arc<Database>,
    faulty: Arc<FaultyService>,
    rt: Runtime,
    cert: Arc<Certifier>,
}

impl Substrate {
    fn build(seed: u64, fault_rate: f64) -> Substrate {
        let reg = Registry::new();
        let ft = FatTree::build(1, 4).expect("k=4 fat tree");
        let db = Arc::new(Database::with_obs(&reg));
        for (_, d) in ft.topo.devices() {
            if d.role == Role::Host {
                continue;
            }
            db.insert_device(
                &d.name,
                vec![
                    (attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into()),
                    (attrs::FIRMWARE_VERSION.into(), AttrValue::from("fw-1.0.0")),
                ],
            )
            .expect("seed device");
        }
        let inner = Arc::new(EmuService::new(EmuNet::from_fattree(&ft)));
        let faulty = Arc::new(FaultyService::new(
            inner,
            FaultPlan::builder()
                .rate(fault_rate)
                .seed(seed ^ OCC_SALT)
                .build(),
        ));
        let rt = Runtime::with_obs(
            db.clone(),
            faulty.clone() as Arc<dyn occam_emunet::DeviceService>,
            Policy::Ldsf,
            &reg,
        );
        let cert = Arc::new(Certifier::with_obs(&reg));
        rt.attach_certifier(Arc::clone(&cert));
        Substrate {
            reg,
            db,
            faulty,
            rt,
            cert,
        }
    }
}

fn violation(report: &mut OccChaosReport, why: String) {
    report.violations += 1;
    if report.first_violation.is_none() {
        report.first_violation = Some(why);
    }
}

/// One read-modify-write increment of the contended counter.
fn increment_task(rt: &Runtime, name: &str, isolation: Isolation) -> bool {
    let report = rt
        .task(name)
        .isolation(isolation)
        .retry(RetryPolicy::attempts(3))
        .run(|ctx| {
            let net = ctx.network(COUNTER_DEVICE)?;
            let current = net
                .get(COUNTER_ATTR)?
                .get(COUNTER_DEVICE)
                .and_then(AttrValue::as_int)
                .unwrap_or(0);
            net.set(COUNTER_ATTR, AttrValue::from(current + 1))?;
            Ok(())
        });
    report.state == TaskState::Completed
}

/// Campaign 1: concurrent mixed-isolation increments on one row.
fn contended_increments(cfg: &OccChaosConfig, report: &mut OccChaosReport) {
    let sub = Substrate::build(cfg.seed, 0.0);
    std::thread::scope(|s| {
        for w in 0..cfg.writers {
            let rt = sub.rt.clone();
            let increments = cfg.increments;
            s.spawn(move || {
                // Alternate isolation modes across writers so OCC commits
                // interleave with 2PL commits on the same row.
                let isolation = if w % 2 == 0 {
                    Isolation::Occ { max_retries: 8 }
                } else {
                    Isolation::TwoPl
                };
                for i in 0..increments {
                    let name = format!("occ.inc.w{w}.{i}");
                    assert!(
                        increment_task(&rt, &name, isolation),
                        "increment task {name} failed on a fault-free substrate"
                    );
                }
            });
        }
    });
    let tasks = u64::from(cfg.writers) * u64::from(cfg.increments);
    report.increment_tasks += tasks;
    let finl = sub
        .db
        .read_view()
        .get_attr(
            &Pattern::from_glob(COUNTER_DEVICE).expect("glob"),
            COUNTER_ATTR,
        )
        .get(COUNTER_DEVICE)
        .and_then(AttrValue::as_int)
        .unwrap_or(0);
    let lost = tasks.saturating_sub(u64::try_from(finl).unwrap_or(0));
    report.lost_updates += lost;
    if lost > 0 {
        violation(
            report,
            format!("lost updates: counter {finl} after {tasks} increments"),
        );
    }
    if sub.cert.committed() != tasks {
        violation(
            report,
            format!(
                "certifier ingested {} footprints for {tasks} committed tasks",
                sub.cert.committed()
            ),
        );
    }
    report.certified_commits += sub.cert.committed();
    if !sub.cert.is_acyclic() {
        violation(
            report,
            format!(
                "certifier found a conflict cycle: {}",
                sub.cert.first_violation().unwrap_or_default()
            ),
        );
    }
    sub.rt.detach_certifier();
}

/// Campaign 2: sequential OCC tasks that must fall back (they `apply()`)
/// and then survive seeded transient device faults under 2PL retries.
fn fallback_under_faults(cfg: &OccChaosConfig, report: &mut OccChaosReport) {
    let sub = Substrate::build(cfg.seed, cfg.fault_rate);
    let scope = Pattern::from_glob("dc01.pod01.*").expect("glob");
    let retry = RetryPolicy::attempts(6)
        .with_backoff(Duration::from_micros(50), Duration::from_micros(200))
        .with_seed(cfg.seed);
    for t in 0..cfg.fallback_tasks {
        let drain = t % 2 == 0;
        let task_report = sub
            .rt
            .task(format!("occ.fallback.{t}"))
            .isolation(Isolation::Occ { max_retries: 4 })
            .retry(retry.clone())
            .run(move |ctx| {
                let net = ctx.network("dc01.pod01.*")?;
                if drain {
                    net.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
                    net.apply("f_drain")?;
                } else {
                    net.apply("f_undrain")?;
                    net.set(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE.into())?;
                }
                Ok(())
            });
        report.fallback_tasks += 1;
        // Verification runs fault-free; pausing keeps the stream aligned.
        sub.faulty.set_enabled(false);
        match task_report.state {
            TaskState::Completed => {
                let want = if drain {
                    attrs::STATUS_UNDER_MAINTENANCE
                } else {
                    attrs::STATUS_ACTIVE
                };
                let statuses = sub.db.read_view().get_attr(&scope, attrs::DEVICE_STATUS);
                for (name, v) in &statuses {
                    if v.as_str() != Some(want) {
                        violation(
                            report,
                            format!("fallback task {t}: {name} status not {want}"),
                        );
                    }
                }
            }
            TaskState::Aborted => {
                // Exhausted its retries under faults: acceptable only as a
                // transient device error, never an OCC-layer leak.
                report.exhausted_retries += 1;
                match task_report.error {
                    Some(TaskError::Device(_)) | Some(TaskError::Db(_)) => {}
                    other => violation(
                        report,
                        format!("fallback task {t} aborted with non-transient {other:?}"),
                    ),
                }
            }
            other => violation(report, format!("fallback task {t}: final state {other:?}")),
        }
        sub.faulty.set_enabled(true);
    }
    report.fallbacks_fired += sub.reg.counter_value("core.occ.fallbacks");
    if report.fallbacks_fired != u64::from(cfg.fallback_tasks) {
        violation(
            report,
            format!(
                "{} fallbacks fired for {} apply-bearing OCC tasks",
                report.fallbacks_fired, cfg.fallback_tasks
            ),
        );
    }
    report.device_faults += sub.faulty.injector().failures_injected();
    report.retries += sub.reg.counter_value("core.task.retries");
    if !sub.cert.is_acyclic() {
        violation(
            report,
            format!(
                "certifier found a conflict cycle under faults: {}",
                sub.cert.first_violation().unwrap_or_default()
            ),
        );
    }
    sub.rt.detach_certifier();
}

/// Runs the OCC chaos phase and returns its report. Violations are
/// counted in [`OccChaosReport::violations`]; the campaign folds them
/// into its headline `invariant_violations`.
pub fn run_occ_phase(cfg: &OccChaosConfig) -> OccChaosReport {
    let mut report = OccChaosReport::default();
    contended_increments(cfg, &mut report);
    fallback_under_faults(cfg, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occ_phase_loses_nothing_and_certifies_acyclic() {
        let report = run_occ_phase(&OccChaosConfig::default());
        assert_eq!(report.violations, 0, "{:?}", report.first_violation);
        assert_eq!(report.lost_updates, 0);
        assert_eq!(report.increment_tasks, 48);
        assert_eq!(report.certified_commits, 48);
        assert_eq!(report.fallback_tasks, 8);
        assert_eq!(report.fallbacks_fired, 8);
    }

    #[test]
    fn occ_phase_fallback_campaign_is_deterministic_per_seed() {
        // Only the single-threaded campaign is asserted byte-identical;
        // the concurrent campaign's report fields are interleaving-
        // independent by construction and covered above.
        let cfg = OccChaosConfig {
            seed: 77,
            fault_rate: 0.12,
            ..OccChaosConfig::default()
        };
        let a = run_occ_phase(&cfg);
        let b = run_occ_phase(&cfg);
        assert_eq!(a, b);
        assert!(
            a.device_faults > 0,
            "a 12% campaign must actually inject faults"
        );
    }
}
