//! # occam-chaos
//!
//! Deterministic, seeded fault campaigns over the full Occam stack
//! (DESIGN.md §11).
//!
//! The runtime's reliability story — strict-2PL isolation, typed
//! execution logs, suggested rollback plans, and (new with this crate's
//! PR) transient-fault retry with inter-attempt rollback — is only worth
//! what it survives. A **campaign** ([`Campaign`]) arms seeded fault
//! injectors at *every* stateful boundary and drives a seeded stream of
//! management tasks through them:
//!
//! | layer   | fault                                        | mechanism |
//! |---------|----------------------------------------------|-----------|
//! | netdb   | query connection failures                    | [`occam_netdb::FaultPlan`] on the database |
//! | devices | injected call failures, latency spikes, wedged ("stuck") devices | [`occam_emunet::FaultyService`] shim |
//! | storage | crash points: WAL dump → recover → compare; torn-prefix replay | [`occam_netdb::Database::recover`] |
//! | gateway | connections dropped mid-frame; clients vanishing after SUBMIT | raw loopback sockets against a live [`occam_gateway::GatewayServer`] |
//! | replication | leader killed mid-commit; followers partitioned mid-catch-up; crash-and-rejoin | live [`occam_netdb::ReplicaSet`] with deterministic failover |
//! | isolation | mixed OCC/2PL writers contending on one row; OCC fallback under device faults | [`occam_core::Isolation::Occ`] tasks with an [`occam_cert::Certifier`] attached |
//! | specs   | declarative specs killed mid-execution; compliance-view convergence cross-checked against cold recomputes | compiled [`occam_spec`] programs over the netdb view cache |
//!
//! After every task the campaign asserts the paper's recovery contract:
//! completed tasks satisfy their scenario postcondition (*fully
//! applied*), aborted tasks — after mechanically executing the suggested
//! rollback plan — leave database and devices byte-identical to the
//! pre-task snapshot (*fully rolled back*). Anything else counts into
//! `chaos.invariant.violations`, which a healthy stack keeps at **zero**
//! across the whole fault-rate sweep.
//!
//! Campaigns are deterministic: identical [`CampaignConfig`]s yield
//! byte-identical [`CampaignReport`] JSON. See `DESIGN.md` §11 for the
//! campaign model and fault taxonomy.
//!
//! ```
//! use occam_chaos::{Campaign, CampaignConfig};
//!
//! let mut cfg = CampaignConfig::at_rate(7, 0.10);
//! cfg.tasks = 8;
//! let report = Campaign::new(cfg).run();
//! assert_eq!(report.invariant_violations, 0);
//! assert_eq!(report.completed + report.rolled_back, 8);
//! ```

pub mod campaign;
pub mod gateway;
pub mod occ;
pub mod repl;
pub mod report;
pub mod scenario;
pub mod snapshot;
pub mod spec;
pub mod update;

pub use campaign::{Campaign, CampaignConfig};
pub use gateway::{run_gateway_phase, GatewayChaosConfig};
pub use occ::{run_occ_phase, OccChaosConfig};
pub use repl::{run_repl_phase, ReplChaosConfig};
pub use report::{
    CampaignReport, GatewayChaosReport, OccChaosReport, ReplChaosReport, SpecChaosReport,
    UpdateChaosReport,
};
pub use scenario::{Scenario, ScenarioKind};
pub use snapshot::{DeviceFingerprint, StateSnapshot};
pub use spec::{run_spec_phase, SpecChaosConfig};
pub use update::{run_update_phase, UpdateChaosConfig};
