//! Declarative-spec chaos: specs submitted mid-campaign, killed
//! mid-execution, and audited through the incremental compliance view —
//! asserting that the view **converges**: after every task the network
//! is either all-compliant with the spec's declared state (fully
//! applied) or byte-identical to the pre-task snapshot (fully rolled
//! back), and the incremental refresh agrees with a from-scratch
//! recompute at every audit point.
//!
//! Two seeded campaigns run over fresh substrates:
//!
//! 1. **Hard kill** — a firmware spec is submitted with a deterministic
//!    device fault armed at its optic test: the program dies *inside*
//!    the maintenance window, after the drain, the database writes, the
//!    config push, and the test prepare. The phase executes the
//!    suggested rollback, asserts database and devices byte-identical
//!    to the pre-task capture and the compliance view back on the old
//!    state, then clears the fault, re-submits the same spec, and
//!    asserts the view converges to all-compliant with the target.
//! 2. **Faulted stream** — a seeded stream of drain / undrain /
//!    maintenance / firmware specs runs with transient device and
//!    database faults armed. After every task the all-or-nothing
//!    contract is verified (postconditions through the compliance view,
//!    rollback through snapshot identity), and a standing campaign-wide
//!    audit view is refreshed across every commit.
//!
//! Every audit compares the incremental refresh against
//! [`occam_netdb::compliance_cold`]; `incremental_mismatches` must stay
//! zero.
//!
//! Determinism: single-threaded, seeded fault streams, fixed spec
//! order — identical configs yield identical [`SpecChaosReport`]s.

use crate::report::SpecChaosReport;
use crate::snapshot::StateSnapshot;
use occam_core::{execute_rollback, RetryPolicy, Runtime, TaskReport, TaskState};
use occam_emunet::{EmuNet, EmuService, FaultyService};
use occam_netdb::{attrs, compliance_cold, Assertion, Database, FaultPlan};
use occam_obs::Registry;
use occam_regex::Pattern;
use occam_sched::Policy;
use occam_spec::compile_source;
use occam_topology::{FatTree, Role};
use std::sync::Arc;
use std::time::Duration;

/// Device-fault salt, distinct from the other phases' streams.
const SPEC_SALT: u64 = 0x0DEC_1A2E_57EC_5EED;

/// Device-call index of the optic test inside the lowered firmware
/// spec used by the hard-kill campaign. The lowering is
/// `f_drain`(0) → `f_push`(1) → `f_alloc_ip`(2) → `f_optic_test`(3) →
/// `f_dealloc_ip` → `f_undrain`; failing call 3 kills the program
/// mid-maintenance-window with real database and device state behind it.
const KILL_AT_OPTIC_TEST: u64 = 3;

/// Tuning for the spec chaos phase.
#[derive(Clone, Debug)]
pub struct SpecChaosConfig {
    /// Master seed for the fault streams.
    pub seed: u64,
    /// Device/database fault probability during the faulted campaign.
    pub fault_rate: f64,
}

impl Default for SpecChaosConfig {
    fn default() -> SpecChaosConfig {
        SpecChaosConfig {
            seed: 0x5BEC,
            fault_rate: 0.08,
        }
    }
}

/// One fresh substrate: a `FatTree(1, 4)` fabric mirrored into a seeded
/// database and a runtime over a faultable device service.
struct Substrate {
    db: Arc<Database>,
    inner: Arc<EmuService>,
    faulty: Arc<FaultyService>,
    rt: Runtime,
}

impl Substrate {
    fn build(seed: u64, fault_rate: f64) -> Substrate {
        let reg = Registry::new();
        let ft = FatTree::build(1, 4).expect("k=4 fat tree");
        let db = Arc::new(Database::with_obs(&reg));
        for (_, d) in ft.topo.devices() {
            if d.role == Role::Host {
                continue;
            }
            db.insert_device(
                &d.name,
                vec![
                    (attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into()),
                    (attrs::FIRMWARE_VERSION.into(), "fw-1.0.0".into()),
                ],
            )
            .expect("seed device");
        }
        let inner = Arc::new(EmuService::new(EmuNet::from_fattree(&ft)));
        let faulty = Arc::new(FaultyService::new(
            inner.clone(),
            FaultPlan::builder()
                .rate(fault_rate)
                .seed(seed ^ SPEC_SALT)
                .build(),
        ));
        db.set_fault_plan(
            FaultPlan::builder()
                .rate(fault_rate)
                .seed(seed ^ SPEC_SALT.rotate_left(17))
                .build(),
        );
        let rt = Runtime::with_obs(
            db.clone(),
            faulty.clone() as Arc<dyn occam_emunet::DeviceService>,
            Policy::Ldsf,
            &reg,
        );
        Substrate {
            db,
            inner,
            faulty,
            rt,
        }
    }

    fn faults_enabled(&self, on: bool) {
        self.db.faults().set_enabled(on);
        self.faulty.set_enabled(on);
    }

    /// Compiles one spec source and runs it under the runtime.
    fn run_spec(&self, src: &str, name: &str, retry: Option<RetryPolicy>) -> TaskReport {
        let program = match compile_source(src) {
            Ok(compiled) => compiled.program(),
            Err(e) => panic!("chaos spec failed to compile: {e}"),
        };
        let mut builder = self.rt.task(name);
        if let Some(policy) = retry {
            builder = builder.retry(policy);
        }
        builder.run(move |ctx| program(ctx))
    }
}

fn violation(report: &mut SpecChaosReport, why: String) {
    report.violations += 1;
    if report.first_violation.is_none() {
        report.first_violation = Some(why);
    }
}

/// Evaluates `assertions` over `scope` through the incremental view
/// cache, cross-checks against a cold recompute, and returns whether the
/// scope is fully compliant.
fn audit(
    sub: &Substrate,
    scope: &Pattern,
    assertions: &[Assertion],
    report: &mut SpecChaosReport,
) -> bool {
    report.audits += 1;
    let snap = sub.db.snapshot();
    let incremental = sub.db.views().refresh(&snap, scope, assertions);
    let cold = compliance_cold(&snap, scope, assertions);
    if !incremental.same_result(&cold) {
        report.incremental_mismatches += 1;
        violation(
            report,
            format!(
                "incremental refresh diverged from cold recompute: {} vs {}",
                incremental.summary(3),
                cold.summary(3)
            ),
        );
    }
    incremental.compliant()
}

/// Campaign 1: kill a firmware spec inside its maintenance window,
/// verify byte-identical rollback, then clear the fault, re-submit, and
/// verify the compliance view converges to all-compliant.
fn hard_kill(cfg: &SpecChaosConfig, report: &mut SpecChaosReport) {
    let sub = Substrate::build(cfg.seed, 0.0);
    let scope = Pattern::from_glob("dc01.pod00.*").expect("glob");
    let src = "spec fw_rollout {\n\
               \x20 scope dc01.pod00.*\n\
               \x20 target firmware fw-9.0.0\n\
               \x20 test optic\n\
               \x20 ensure status active\n\
               }\n";
    let target = [
        Assertion::new(attrs::FIRMWARE_VERSION, "fw-9.0.0"),
        Assertion::new(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE),
    ];
    let old_state = [
        Assertion::new(attrs::FIRMWARE_VERSION, "fw-1.0.0"),
        Assertion::new(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE),
    ];

    // The doomed submission (no retry — a retry would sail past the
    // one-shot fault): the optic test fails deterministically, mid-window.
    sub.faulty
        .set_plan(FaultPlan::fail_at([KILL_AT_OPTIC_TEST]));
    let pre = StateSnapshot::capture(&sub.db, &sub.inner);
    report.specs_run += 1;
    report.kills += 1;
    let task = sub.run_spec(src, "spec.fw_rollout", None);
    sub.faults_enabled(false);
    match task.state {
        TaskState::Aborted => {
            if task.rollback.is_some() {
                if let Err(e) = execute_rollback(&task, &sub.db, sub.rt.service().as_ref()) {
                    violation(report, format!("kill rollback failed fault-free: {e}"));
                }
            }
            let post = StateSnapshot::capture(&sub.db, &sub.inner);
            match pre.first_diff(&post) {
                None => report.rolled_back += 1,
                Some(diff) => violation(report, format!("residue after spec kill: {diff}")),
            }
            // Convergence, half one: rolled back means compliant with
            // the *old* state, and not with the target.
            if !audit(&sub, &scope, &old_state, report) {
                violation(
                    report,
                    "rolled-back scope not compliant with old state".into(),
                );
            }
            if audit(&sub, &scope, &target, report) {
                violation(report, "killed spec reports target compliance".into());
            }
        }
        other => violation(report, format!("killed spec ended {other:?}, not Aborted")),
    }

    // Convergence, half two: the clean re-submission must complete and
    // flip the same compliance view to all-compliant.
    sub.faulty.set_plan(FaultPlan::none());
    sub.faults_enabled(true);
    report.specs_run += 1;
    let task = sub.run_spec(src, "spec.fw_rollout", None);
    if task.state != TaskState::Completed {
        violation(report, format!("resubmitted spec failed: {:?}", task.error));
        return;
    }
    report.completed += 1;
    if audit(&sub, &scope, &target, report) {
        report.converged += 1;
    } else {
        violation(report, "resubmitted spec left non-compliant devices".into());
    }
}

/// Campaign 2: a seeded stream of specs under transient faults, each
/// verified fully-applied (via the compliance view) or fully-rolled-back
/// (via snapshot identity).
fn faulted_stream(cfg: &SpecChaosConfig, report: &mut SpecChaosReport) {
    let sub = Substrate::build(cfg.seed, cfg.fault_rate);
    sub.faults_enabled(false);
    let universe = Pattern::from_glob("dc01.*").expect("glob");
    for t in 0..12u32 {
        let pod = t % 4;
        let scope = format!("dc01.pod0{pod}.*");
        // drain → undrain → maintenance → firmware, rotating pods.
        let (name, src, expects) = match t % 4 {
            0 => (
                "spec.drain",
                format!("spec drain {{\n scope {scope}\n ensure status under_maintenance\n}}\n"),
                vec![Assertion::new(
                    attrs::DEVICE_STATUS,
                    attrs::STATUS_UNDER_MAINTENANCE,
                )],
            ),
            1 => (
                "spec.undrain",
                format!("spec undrain {{\n scope {scope}\n ensure status active\n}}\n"),
                vec![Assertion::new(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE)],
            ),
            2 => (
                "spec.maintenance",
                format!(
                    "spec device_maintenance {{\n scope {scope}\n test optic\n ensure status active\n}}\n"
                ),
                vec![Assertion::new(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE)],
            ),
            _ => (
                "spec.firmware",
                format!(
                    "spec firmware_upgrade {{\n scope {scope}\n target firmware fw-s{t}\n ensure status active\n}}\n"
                ),
                vec![
                    Assertion::new(attrs::FIRMWARE_VERSION, format!("fw-s{t}").as_str()),
                    Assertion::new(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE),
                ],
            ),
        };
        report.specs_run += 1;
        let pre = StateSnapshot::capture(&sub.db, &sub.inner);
        let retry = RetryPolicy::attempts(2)
            .with_backoff(Duration::from_micros(50), Duration::from_micros(200))
            .with_seed(cfg.seed.wrapping_add(u64::from(t)));
        sub.faults_enabled(true);
        let task = sub.run_spec(&src, name, Some(retry));
        // Verification and recovery run fault-free; pausing does not
        // advance the seeded streams.
        sub.faults_enabled(false);
        let scope_pat = Pattern::from_glob(&scope).expect("glob");
        match task.state {
            TaskState::Completed => {
                report.completed += 1;
                if !audit(&sub, &scope_pat, &expects, report) {
                    violation(report, format!("{name}: completed but scope not compliant"));
                }
            }
            TaskState::Aborted => {
                if task.rollback.is_some() {
                    if let Err(e) = execute_rollback(&task, &sub.db, sub.rt.service().as_ref()) {
                        violation(report, format!("{name}: rollback failed fault-free: {e}"));
                    }
                }
                let post = StateSnapshot::capture(&sub.db, &sub.inner);
                match pre.first_diff(&post) {
                    None => report.rolled_back += 1,
                    Some(diff) => {
                        violation(report, format!("{name}: residue after rollback: {diff}"))
                    }
                }
            }
            other => violation(report, format!("{name}: non-terminal state {other:?}")),
        }
        // A standing campaign-wide audit view rides across every commit:
        // its incremental refresh must track the churn exactly.
        audit(
            &sub,
            &universe,
            &[Assertion::new(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE)],
            report,
        );
    }
}

/// Runs the spec chaos phase and returns its report. Violations are
/// counted in [`SpecChaosReport::violations`]; the campaign folds them
/// into its headline `invariant_violations`.
pub fn run_spec_phase(cfg: &SpecChaosConfig) -> SpecChaosReport {
    let mut report = SpecChaosReport::default();
    hard_kill(cfg, &mut report);
    faulted_stream(cfg, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_phase_converges_and_views_stay_exact() {
        let report = run_spec_phase(&SpecChaosConfig::default());
        assert_eq!(report.violations, 0, "{:?}", report.first_violation);
        assert_eq!(report.incremental_mismatches, 0);
        assert_eq!(report.kills, 1);
        assert_eq!(report.converged, 1);
        assert_eq!(report.specs_run, 14);
        assert_eq!(
            report.completed + report.rolled_back,
            report.specs_run,
            "every spec must land on a terminal verified outcome"
        );
        assert!(report.audits >= report.specs_run);
    }

    #[test]
    fn spec_phase_is_deterministic_per_seed() {
        let cfg = SpecChaosConfig {
            seed: 1234,
            fault_rate: 0.12,
        };
        let a = run_spec_phase(&cfg);
        let b = run_spec_phase(&cfg);
        assert_eq!(a, b);
    }
}
