//! Consistent-update chaos: killing a planned update mid-wave, injecting
//! device faults while waves execute, and racing two conflicting planned
//! updates — asserting the DESIGN.md §15 contract that the forwarding
//! invariants hold at **every intermediate publication** and that any
//! failure lands the network on a previously-verified wave boundary.
//!
//! Three seeded campaigns run over fresh substrates:
//!
//! 1. **Kill mid-wave** — a [`CancelToken`] is fired from the executor's
//!    first `Drained` publication, so the wave aborts with its devices
//!    drained and half-written. The phase asserts the mechanical rollback
//!    restores the database *and* the devices byte-identical to the wave
//!    boundary, then re-plans from the current config and drives the
//!    resumed plan to completion.
//! 2. **Device faults during waves** — the device service injects seeded
//!    transient faults while the plan executes under a retry policy.
//!    Every retry re-publishes, and every publication is re-checked.
//! 3. **Concurrent conflicting plans** — two planned updates race from
//!    two threads: disjoint pod firmware rollouts that both rewrite every
//!    ToR's `MGMT_GENERATION` (a genuine write-write conflict serialized
//!    by strict-2PL). The checker runs at every publication of both
//!    plans, and afterwards no device may hold a torn config (attributes
//!    from both plans mixed).
//!
//! Determinism: campaigns 1 and 2 are single-threaded with seeded fault
//! streams, and campaign 3 reports only interleaving-independent counts
//! (publication totals are fixed by the two plans' shapes at fault rate
//! zero), so the [`UpdateChaosReport`] depends only on the config.

use crate::report::UpdateChaosReport;
use crate::snapshot::StateSnapshot;
use occam_core::{CancelToken, RetryPolicy, Runtime};
use occam_emunet::{EmuNet, EmuService, FaultyService};
use occam_netdb::{attrs, AttrValue, Database, FaultPlan, StoreSnapshot, WalRecord};
use occam_obs::Registry;
use occam_regex::Pattern;
use occam_sched::Policy;
use occam_topology::{DeviceId, FatTree, Role, Topology};
use occam_update::{
    diff, execute_plan, Checker, ExecOptions, ModelState, Plan, Synthesizer, TrafficClass,
    UpdateOp, WavePoint,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Device-fault salt, distinct from the main campaign's streams.
const UPDATE_SALT: u64 = 0x5EED_0FC0_11AB_7E55;

/// Tuning for the update chaos phase.
#[derive(Clone, Debug)]
pub struct UpdateChaosConfig {
    /// Master seed for plan synthesis and the fault stream.
    pub seed: u64,
    /// Device-service fault probability during the faulted campaign.
    pub fault_rate: f64,
}

impl Default for UpdateChaosConfig {
    fn default() -> UpdateChaosConfig {
        UpdateChaosConfig {
            seed: 0xA11CE,
            fault_rate: 0.08,
        }
    }
}

/// One fresh substrate: a `FatTree(1, 4)` fabric mirrored into a seeded
/// database, cross-pod traffic classes, and a runtime over a faultable
/// device service.
struct Substrate {
    reg: Registry,
    db: Arc<Database>,
    inner: Arc<EmuService>,
    faulty: Arc<FaultyService>,
    rt: Runtime,
    ft: FatTree,
    classes: Vec<TrafficClass>,
}

impl Substrate {
    fn build(seed: u64, fault_rate: f64) -> Substrate {
        let reg = Registry::new();
        let ft = FatTree::build(1, 4).expect("k=4 fat tree");
        let db = Arc::new(Database::with_obs(&reg));
        for (_, d) in ft.topo.devices() {
            if d.role == Role::Host {
                continue;
            }
            db.insert_device(
                &d.name,
                vec![
                    (attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into()),
                    (attrs::FIRMWARE_VERSION.into(), AttrValue::from("fw-1.0.0")),
                ],
            )
            .expect("seed device");
        }
        let inner = Arc::new(EmuService::new(EmuNet::from_fattree(&ft)));
        let faulty = Arc::new(FaultyService::new(
            inner.clone(),
            FaultPlan::builder()
                .rate(fault_rate)
                .seed(seed ^ UPDATE_SALT)
                .build(),
        ));
        let rt = Runtime::with_obs(
            db.clone(),
            faulty.clone() as Arc<dyn occam_emunet::DeviceService>,
            Policy::Ldsf,
            &reg,
        );
        // One cross-pod class per adjacent pod pair: every pod's uplinks
        // matter, so a plan that drains a whole pod's aggs (or all cores)
        // at once is caught.
        let classes: Vec<TrafficClass> = (0..4u64)
            .map(|p| {
                let q = ((p + 1) % 4) as usize;
                let p = p as usize;
                TrafficClass::pair(
                    format!("pod{p}-pod{q}"),
                    ft.hosts[p][0][0],
                    ft.hosts[q][1][0],
                    p as u64,
                )
            })
            .collect();
        Substrate {
            reg,
            db,
            inner,
            faulty,
            rt,
            ft,
            classes,
        }
    }

    /// Diffs the live config against "scoped devices get `attr = value`
    /// (plus firmware, when given)" — the same frontend the gateway's
    /// `planned_update` workflow runs. `CONFIG_VERSION` and firmware are
    /// pushed attributes, so ops carrying them barrier their wave; any
    /// other attribute yields database-only ops.
    fn ops_for(
        &self,
        scope: &Pattern,
        attr: &str,
        value: &str,
        firmware: Option<&str>,
    ) -> Vec<UpdateOp> {
        let old = self.db.read_view().into_snapshot();
        let mut records: Vec<WalRecord> = old
            .select_devices(&Pattern::universe())
            .into_iter()
            .map(|name| {
                let device_attrs = old.device_attrs(&name).unwrap_or_default();
                WalRecord::InsertDevice {
                    name,
                    attrs: device_attrs.into_iter().collect(),
                }
            })
            .collect();
        for name in old.select_devices(scope) {
            records.push(WalRecord::SetDeviceAttr {
                name: name.clone(),
                attr: attr.into(),
                value: value.into(),
            });
            if let Some(fw) = firmware {
                records.push(WalRecord::SetDeviceAttr {
                    name: name.clone(),
                    attr: attrs::FIRMWARE_VERSION.into(),
                    value: fw.into(),
                });
                records.push(WalRecord::SetDeviceAttr {
                    name,
                    attr: attrs::FIRMWARE_BINARY.into(),
                    value: format!("img-{fw}").as_str().into(),
                });
            }
        }
        diff(&old, &StoreSnapshot::replay(&records))
    }
}

/// Reconstructs the forwarding model from the live database: a device is
/// routed around iff its committed status says so, and the executing
/// wave's devices are additionally mid-rewrite (`in_flux`).
fn live_state(db: &Database, topo: &Topology, in_flux: &[DeviceId]) -> ModelState {
    let mut state = ModelState::default();
    let snap = db.read_view();
    for (name, status) in snap.get_attr(&Pattern::universe(), attrs::DEVICE_STATUS) {
        let down = status.as_str() == Some(attrs::STATUS_DRAINED)
            || status.as_str() == Some(attrs::STATUS_UNDER_MAINTENANCE);
        if down {
            if let Some(id) = topo.device_by_name(&name) {
                state.drained.insert(id);
            }
        }
    }
    state.in_flux.extend(in_flux.iter().copied());
    state
}

/// A publication observer: checks the live state against the invariants
/// at every [`WavePoint`] and accumulates violation text.
struct PublicationAuditor<'a> {
    db: &'a Database,
    topo: &'a Topology,
    plan: &'a Plan,
    checker: Checker<'a>,
    publications: AtomicU64,
    violations: AtomicU64,
    first: Mutex<Option<String>>,
}

impl<'a> PublicationAuditor<'a> {
    fn new(sub: &'a Substrate, plan: &'a Plan) -> PublicationAuditor<'a> {
        PublicationAuditor {
            db: &sub.db,
            topo: &sub.ft.topo,
            plan,
            checker: Checker::new(&sub.ft.topo, &sub.classes),
            publications: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            first: Mutex::new(None),
        }
    }

    fn observe(&self, point: WavePoint) {
        self.publications.fetch_add(1, Ordering::SeqCst);
        let in_flux: Vec<DeviceId> = match point {
            WavePoint::Drained(i) => self.plan.waves[i]
                .devices()
                .iter()
                .filter_map(|n| self.topo.device_by_name(n))
                .collect(),
            WavePoint::Committed(_) => Vec::new(),
        };
        let state = live_state(self.db, self.topo, &in_flux);
        for v in self.checker.check(&state) {
            self.violations.fetch_add(1, Ordering::SeqCst);
            let mut first = self.first.lock().expect("auditor lock");
            if first.is_none() {
                *first = Some(format!("at {point:?}: {v}"));
            }
        }
    }

    fn fold_into(&self, report: &mut UpdateChaosReport) {
        report.publications_checked += self.publications.load(Ordering::SeqCst);
        report.violations += self.violations.load(Ordering::SeqCst);
        if report.first_violation.is_none() {
            report.first_violation = self.first.lock().expect("auditor lock").take();
        }
    }
}

fn violation(report: &mut UpdateChaosReport, why: String) {
    report.violations += 1;
    if report.first_violation.is_none() {
        report.first_violation = Some(why);
    }
}

/// Every scoped device must carry exactly the target attributes.
fn assert_applied(
    sub: &Substrate,
    scope: &Pattern,
    generation: &str,
    firmware: Option<&str>,
    report: &mut UpdateChaosReport,
) {
    let snap = sub.db.read_view();
    for name in snap.select_devices(scope) {
        let dev = snap.device_attrs(&name).unwrap_or_default();
        if dev.get("CONFIG_VERSION").and_then(|v| v.as_str()) != Some(generation) {
            violation(report, format!("{name}: CONFIG_VERSION not {generation}"));
        }
        if let Some(fw) = firmware {
            if dev.get(attrs::FIRMWARE_VERSION).and_then(|v| v.as_str()) != Some(fw) {
                violation(report, format!("{name}: firmware not {fw}"));
            }
        }
        if dev.get(attrs::DEVICE_STATUS).and_then(|v| v.as_str()) != Some(attrs::STATUS_ACTIVE) {
            violation(report, format!("{name}: not back to ACTIVE"));
        }
    }
}

/// Campaign 1: cancel the plan from inside its first drained publication,
/// assert byte-identical rollback to the wave boundary, then resume.
fn kill_mid_wave(cfg: &UpdateChaosConfig, report: &mut UpdateChaosReport) {
    let sub = Substrate::build(cfg.seed, 0.0);
    let scope = Pattern::from_glob("dc01.pod0[01].agg*").expect("glob");
    let ops = sub.ops_for(&scope, "CONFIG_VERSION", "u1", Some("fw-2.0.0"));
    let synth = Synthesizer::new(&sub.ft.topo, &sub.classes).with_seed(cfg.seed);
    let plan = synth.synthesize(&ops).expect("agg rollout is feasible");
    report.plans += 1;
    report.waves_planned += plan.waves.len() as u64;

    let pre = StateSnapshot::capture(&sub.db, &sub.inner);
    let token = CancelToken::new();
    let auditor = PublicationAuditor::new(&sub, &plan);
    let kill_token = token.clone();
    let observer = |point: WavePoint| {
        // The state is audited *before* the kill: the drained publication
        // itself must be invariant-clean even on the doomed attempt.
        auditor.observe(point);
        if point == WavePoint::Drained(0) {
            kill_token.cancel();
        }
    };
    let opts = ExecOptions {
        cancel: Some(token),
        ..ExecOptions::default()
    };
    let exec = execute_plan(&sub.rt, &plan, &opts, Some(&observer));
    auditor.fold_into(report);
    report.cancelled_runs += 1;
    if exec.ok() {
        violation(report, "cancelled plan reported success".into());
    }
    if !exec.rolled_back {
        violation(report, "killed wave was not rolled back".into());
    }
    let post = StateSnapshot::capture(&sub.db, &sub.inner);
    if let Some(d) = pre.first_diff(&post) {
        violation(report, format!("residue after mid-wave kill: {d}"));
    }

    // Resume: re-plan from the (restored) live config and run it out.
    let ops = sub.ops_for(&scope, "CONFIG_VERSION", "u1", Some("fw-2.0.0"));
    let plan = synth.synthesize(&ops).expect("resume plan is feasible");
    report.plans += 1;
    report.waves_planned += plan.waves.len() as u64;
    let auditor = PublicationAuditor::new(&sub, &plan);
    let observer = |point: WavePoint| auditor.observe(point);
    let exec = execute_plan(&sub.rt, &plan, &ExecOptions::default(), Some(&observer));
    auditor.fold_into(report);
    report.resumed_waves += exec.waves_committed as u64;
    if !exec.ok() {
        violation(report, format!("resumed plan failed: {:?}", exec.error));
    }
    assert_applied(&sub, &scope, "u1", Some("fw-2.0.0"), report);
}

/// Campaign 2: seeded transient device faults while the waves execute,
/// under the same retry policy the main campaign uses.
fn faults_during_waves(cfg: &UpdateChaosConfig, report: &mut UpdateChaosReport) {
    let sub = Substrate::build(cfg.seed, cfg.fault_rate);
    let scope = Pattern::from_glob("dc01.pod0[23].agg*").expect("glob");
    let ops = sub.ops_for(&scope, "CONFIG_VERSION", "u2", Some("fw-2.1.0"));
    let synth = Synthesizer::new(&sub.ft.topo, &sub.classes).with_seed(cfg.seed);
    let plan = synth.synthesize(&ops).expect("agg rollout is feasible");
    report.plans += 1;
    report.waves_planned += plan.waves.len() as u64;

    let auditor = PublicationAuditor::new(&sub, &plan);
    let observer = |point: WavePoint| auditor.observe(point);
    let opts = ExecOptions {
        retry: RetryPolicy::attempts(5)
            .with_backoff(Duration::from_micros(50), Duration::from_micros(200))
            .with_seed(cfg.seed),
        ..ExecOptions::default()
    };
    let exec = execute_plan(&sub.rt, &plan, &opts, Some(&observer));
    auditor.fold_into(report);
    report.device_faults += sub.faulty.injector().failures_injected();
    report.retries += sub.reg.counter_value("core.task.retries");
    if exec.ok() {
        // Faults paused for verification (they would fail snapshot reads
        // on the devices, not change state).
        sub.faulty.set_enabled(false);
        assert_applied(&sub, &scope, "u2", Some("fw-2.1.0"), report);
    } else {
        // A wave exhausted its retries: acceptable, but only if it landed
        // on the boundary — every device fully old or fully new, active.
        sub.faulty.set_enabled(false);
        if !exec.rolled_back {
            violation(report, "faulted wave left without rollback".into());
        }
        let snap = sub.db.read_view();
        for name in snap.select_devices(&scope) {
            let dev = snap.device_attrs(&name).unwrap_or_default();
            let fw = dev.get(attrs::FIRMWARE_VERSION).and_then(|v| v.as_str());
            let gen = dev.get("CONFIG_VERSION").and_then(|v| v.as_str());
            let old = fw == Some("fw-1.0.0") && gen.is_none();
            let new = fw == Some("fw-2.1.0") && gen == Some("u2");
            if !(old || new) {
                violation(report, format!("{name}: torn config at wave boundary"));
            }
        }
    }
}

/// Campaign 3: two conflicting planned updates race. Plan A upgrades the
/// pod 0/1 aggregation layer, plan B the pod 2/3 layer — invariant-safe
/// under any interleaving (at most one agg per pod drained at a time) —
/// and **both** rewrite every ToR's `MGMT_GENERATION` — a database-only,
/// write-write
/// conflict strict-2PL must serialize without deadlock or tearing.
fn concurrent_conflicting(cfg: &UpdateChaosConfig, report: &mut UpdateChaosReport) {
    let sub = Substrate::build(cfg.seed, 0.0);
    let tor_scope = Pattern::from_glob("dc01.pod*.tor*").expect("glob");
    let plans: Vec<(Pattern, &str, &str)> = vec![
        (
            Pattern::from_glob("dc01.pod0[01].agg*").expect("glob"),
            "cA",
            "fw-3.0.0",
        ),
        (
            Pattern::from_glob("dc01.pod0[23].agg*").expect("glob"),
            "cB",
            "fw-3.1.0",
        ),
    ];
    let synth = Synthesizer::new(&sub.ft.topo, &sub.classes).with_seed(cfg.seed);
    let mut built = Vec::new();
    for (scope, generation, firmware) in &plans {
        // Each plan: its own aggs get firmware, every ToR gets the
        // generation stamp (the shared, conflicting part).
        let mut ops = sub.ops_for(scope, "CONFIG_VERSION", generation, Some(firmware));
        ops.extend(sub.ops_for(&tor_scope, "MGMT_GENERATION", generation, None));
        let plan = synth.synthesize(&ops).expect("concurrent plan feasible");
        report.plans += 1;
        report.waves_planned += plan.waves.len() as u64;
        built.push(plan);
    }

    let failures = AtomicU64::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = built
            .iter()
            .enumerate()
            .map(|(i, plan)| {
                let sub = &sub;
                let failures = &failures;
                s.spawn(move || {
                    let auditor = PublicationAuditor::new(sub, plan);
                    let observer = |point: WavePoint| auditor.observe(point);
                    let opts = ExecOptions {
                        task_prefix: format!("planned_update.c{i}"),
                        ..ExecOptions::default()
                    };
                    let exec = execute_plan(&sub.rt, plan, &opts, Some(&observer));
                    if !exec.ok() {
                        failures.fetch_add(1, Ordering::SeqCst);
                    }
                    let first = auditor.first.lock().expect("auditor lock").take();
                    (
                        auditor.publications.load(Ordering::SeqCst),
                        auditor.violations.load(Ordering::SeqCst),
                        first,
                    )
                })
            })
            .collect();
        for h in handles {
            let (pubs, viols, first) = h.join().expect("concurrent plan thread");
            report.concurrent_runs += 1;
            report.publications_checked += pubs;
            report.violations += viols;
            if report.first_violation.is_none() {
                report.first_violation = first;
            }
        }
    });
    if failures.load(Ordering::SeqCst) > 0 {
        violation(report, "a concurrent plan failed to commit".into());
    }

    // No tearing: each agg carries exactly its own plan's pair, and each
    // ToR carries one generation or the other — never a mix.
    let snap = sub.db.read_view();
    for (scope, generation, firmware) in &plans {
        for name in snap.select_devices(scope) {
            let dev = snap.device_attrs(&name).unwrap_or_default();
            if dev.get(attrs::FIRMWARE_VERSION).and_then(|v| v.as_str()) != Some(firmware)
                || dev.get("CONFIG_VERSION").and_then(|v| v.as_str()) != Some(generation)
            {
                report.torn_configs += 1;
                violation(report, format!("{name}: torn agg config"));
            }
        }
    }
    for name in snap.select_devices(&tor_scope) {
        let dev = snap.device_attrs(&name).unwrap_or_default();
        let gen = dev.get("MGMT_GENERATION").and_then(|v| v.as_str());
        if gen != Some("cA") && gen != Some("cB") {
            report.torn_configs += 1;
            violation(report, format!("{name}: ToR missed both generations"));
        }
    }
}

/// Runs the update chaos phase and returns its report. Violations are
/// counted in [`UpdateChaosReport::violations`]; the campaign folds them
/// into its headline `invariant_violations`.
pub fn run_update_phase(cfg: &UpdateChaosConfig) -> UpdateChaosReport {
    let mut report = UpdateChaosReport::default();
    kill_mid_wave(cfg, &mut report);
    faults_during_waves(cfg, &mut report);
    concurrent_conflicting(cfg, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_phase_holds_invariants_at_every_publication() {
        let report = run_update_phase(&UpdateChaosConfig::default());
        assert_eq!(report.violations, 0, "{:?}", report.first_violation);
        assert_eq!(report.torn_configs, 0);
        assert!(report.plans >= 4);
        assert!(report.publications_checked > 0);
        assert_eq!(report.cancelled_runs, 1);
        assert!(report.resumed_waves >= 2);
        assert_eq!(report.concurrent_runs, 2);
    }

    #[test]
    fn update_phase_is_deterministic_per_seed() {
        let cfg = UpdateChaosConfig {
            seed: 99,
            fault_rate: 0.10,
        };
        let a = run_update_phase(&cfg);
        let b = run_update_phase(&cfg);
        assert_eq!(a, b);
        assert!(
            a.device_faults > 0,
            "a 10% campaign must actually inject faults"
        );
    }
}
