//! Replication chaos: leader kill mid-commit, follower partition
//! mid-catch-up, and crash-and-rejoin — asserting zero lost acknowledged
//! commits and byte-identical convergence (DESIGN.md §14).
//!
//! The phase drives a real [`ReplicaSet`] (background shipper thread and
//! all) through four sub-phases:
//!
//! 1. **Steady state** — seeded writes replicate to every follower; the
//!    phase waits for quorum acknowledgement and full convergence.
//! 2. **Partition mid-catch-up** — one follower is partitioned while new
//!    writes land, then healed; the ack-driven shipper must re-send the
//!    whole missing suffix and the follower must converge byte-identically.
//! 3. **Crash and rejoin** — another follower loses its entire state and
//!    rejoins; the next shipping round must bootstrap it from scratch.
//! 4. **Kill leader mid-commit** — every link is partitioned, the leader
//!    commits writes nobody ships, and then dies. Failover must promote
//!    the follower with the longest durable WAL prefix, lose **zero
//!    acknowledged commits** (unacknowledged ones may die with the
//!    leader — that is the durability contract, not a violation), leave
//!    all survivors byte-identical to the promoted leader, and accept
//!    new writes.
//!
//! Determinism: the phase synchronizes on commit counts and convergence
//! barriers rather than timers, so the [`ReplChaosReport`] — counters
//! only, no wall-clock values — depends only on the config.

use crate::report::ReplChaosReport;
use occam_netdb::{check_identical, AttrValue, Database, ReplicaConfig, ReplicaSet};
use std::sync::Arc;
use std::time::Duration;

/// How long each convergence/acknowledgement barrier may take before the
/// phase counts a violation. Generous: barriers resolve in milliseconds.
const BARRIER: Duration = Duration::from_secs(30);

/// Tuning for the replication chaos phase.
#[derive(Clone, Debug)]
pub struct ReplChaosConfig {
    /// Follower replicas in the set.
    pub followers: usize,
    /// Acknowledgement quorum.
    pub quorum: usize,
    /// Devices seeded before replication starts.
    pub devices: u32,
    /// Writes driven in each writing sub-phase.
    pub writes: u32,
}

impl Default for ReplChaosConfig {
    fn default() -> ReplChaosConfig {
        ReplChaosConfig {
            followers: 3,
            quorum: 1,
            devices: 32,
            writes: 16,
        }
    }
}

/// Runs the replication chaos phase and returns its report. Violations
/// are counted in [`ReplChaosReport::violations`]; the campaign folds
/// them into its headline `invariant_violations`.
pub fn run_repl_phase(cfg: &ReplChaosConfig) -> ReplChaosReport {
    let mut report = ReplChaosReport::default();
    let violation = |report: &mut ReplChaosReport, why: String| {
        report.violations += 1;
        if report.first_violation.is_none() {
            report.first_violation = Some(why);
        }
    };

    let leader_db = Arc::new(Database::new());
    for i in 0..cfg.devices {
        leader_db
            .insert_device(
                &format!("dc01.pod{:02}.sw{:02}", i % 4, i / 4),
                vec![("REPL_EPOCH".into(), AttrValue::Int(0))],
            )
            .expect("seed device");
        report.writes += 1;
    }

    let mut set = ReplicaSet::start(
        Arc::clone(&leader_db),
        ReplicaConfig {
            followers: cfg.followers,
            quorum: cfg.quorum,
            ..ReplicaConfig::default()
        },
    );

    // 1. Steady state: writes replicate, quorum acknowledges, all converge.
    for i in 0..cfg.writes {
        leader_db
            .insert_device(&format!("dc01.pod00.steady{i:03}"), vec![])
            .expect("steady write");
        report.writes += 1;
    }
    let target = leader_db.commits();
    if set.leader().wait_acked(target, BARRIER) < target {
        violation(&mut report, "steady state: quorum ack timed out".into());
    }
    if !set.wait_converged(BARRIER) {
        violation(&mut report, "steady state: convergence timed out".into());
    }

    // 2. Partition follower 0 mid-catch-up, write through the partition,
    // heal, and require byte-identical convergence.
    set.set_partitioned(0, true);
    report.partitions += 1;
    for i in 0..cfg.writes {
        leader_db
            .insert_device(&format!("dc01.pod01.part{i:03}"), vec![])
            .expect("partition write");
        report.writes += 1;
    }
    if !set.wait_converged(BARRIER) {
        violation(
            &mut report,
            "partition: healthy followers stopped converging".into(),
        );
    }
    set.set_partitioned(0, false);
    if !set.wait_converged(BARRIER) {
        violation(&mut report, "partition: heal catch-up timed out".into());
    }
    if let Err(e) = check_identical(&set.followers()[0].snapshot(), &leader_db.snapshot()) {
        violation(&mut report, format!("partition: after heal, {e}"));
    }

    // 3. Crash follower 1 with total state loss; the next shipping round
    // must bootstrap it back to identical state.
    if cfg.followers > 1 {
        set.followers()[1].crash_reset();
        report.rejoins += 1;
        if !set.wait_converged(BARRIER) {
            violation(&mut report, "rejoin: bootstrap catch-up timed out".into());
        }
        if let Err(e) = check_identical(&set.followers()[1].snapshot(), &leader_db.snapshot()) {
            violation(&mut report, format!("rejoin: after bootstrap, {e}"));
        }
    }

    // 4. Kill the leader mid-commit: partition every link so fresh commits
    // reach nobody, commit a few, then fail over. Acknowledgement is
    // settled *before* the partition so the report's ack counters are
    // barrier-synchronized, not racing the shipper.
    let pre_kill = leader_db.commits();
    if set.leader().wait_acked(pre_kill, BARRIER) < pre_kill {
        violation(&mut report, "pre-kill: quorum ack timed out".into());
    }
    for i in 0..cfg.followers {
        set.set_partitioned(i, true);
    }
    report.acked_before_kill = pre_kill;
    for i in 0..cfg.writes.min(4) {
        leader_db
            .insert_device(&format!("dc01.pod02.doomed{i:03}"), vec![])
            .expect("doomed write");
        report.writes += 1;
    }
    report.unacked_at_kill = leader_db.commits() - report.acked_before_kill;
    set.kill_leader();
    for i in 0..cfg.followers {
        set.set_partitioned(i, false);
    }
    let (set, promotion) = set.failover();
    report.promoted = promotion.promoted;
    report.lost_acked = report
        .acked_before_kill
        .saturating_sub(promotion.promoted_commits);
    if report.lost_acked > 0 {
        let lost = report.lost_acked;
        violation(
            &mut report,
            format!("failover lost {lost} acknowledged commits"),
        );
    }
    let new_leader = set.leader_db();
    if !set.wait_converged(BARRIER) {
        violation(&mut report, "failover: survivor catch-up timed out".into());
    }
    for f in set.followers() {
        if let Err(e) = check_identical(&f.snapshot(), &new_leader.snapshot()) {
            violation(
                &mut report,
                format!("failover: follower {} not identical: {e}", f.id()),
            );
        }
    }
    // The promoted leader keeps accepting and replicating writes.
    new_leader
        .insert_device("dc01.pod03.postfailover", vec![])
        .expect("post-failover write");
    report.writes += 1;
    let target = new_leader.commits();
    if set.leader().wait_acked(target, BARRIER) < target {
        violation(&mut report, "post-failover: quorum ack timed out".into());
    }
    if !set.wait_converged(BARRIER) {
        violation(&mut report, "post-failover: convergence timed out".into());
    }
    set.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repl_phase_holds_invariants() {
        let report = run_repl_phase(&ReplChaosConfig::default());
        assert_eq!(report.violations, 0, "{:?}", report.first_violation);
        assert_eq!(report.lost_acked, 0);
        assert_eq!(report.partitions, 1);
        assert_eq!(report.rejoins, 1);
        assert!(report.unacked_at_kill > 0, "kill must strand real commits");
    }

    #[test]
    fn repl_phase_report_is_deterministic() {
        let cfg = ReplChaosConfig {
            followers: 2,
            quorum: 2,
            devices: 12,
            writes: 6,
        };
        let a = run_repl_phase(&cfg);
        let b = run_repl_phase(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.violations, 0, "{:?}", a.first_violation);
    }
}
