//! Campaign scenarios: re-runnable management programs with checkable
//! postconditions.
//!
//! Each scenario mirrors one of the paper's case-study workflows and
//! carries the predicate a *fully applied* execution must satisfy, so the
//! campaign engine can verify the all-or-nothing contract in both
//! directions: a completed task must pass its postcondition, and an
//! aborted task (after mechanical rollback) must leave state identical to
//! the pre-task snapshot.

use occam_core::{TaskCtx, TaskResult};
use occam_emunet::{EmuService, FuncArgs};
use occam_netdb::{attrs, Database};
use occam_regex::Pattern;
use occam_topology::Role;

/// Which workflow shape a scenario runs.
///
/// Every shape emits a log the Table-1 rollback grammar parses, so an
/// abort at *any* prefix yields a mechanical rollback plan — the
/// campaign (and the runtime's inter-attempt retry rollback) depend on
/// that.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScenarioKind {
    /// Drain → test-IP prepare → optics test → unprepare → undrain over
    /// a region (case study: device maintenance).
    Maintenance,
    /// Drain → firmware write + config push → undrain (case study #1).
    Firmware,
    /// Allocate test IP → optics test → deallocate (temporary physical
    /// state that must never leak).
    TestIpCycle,
    /// Read-only status audit; must not change anything.
    Audit,
}

impl ScenarioKind {
    /// All kinds, in the order the campaign RNG indexes them.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::Maintenance,
        ScenarioKind::Firmware,
        ScenarioKind::TestIpCycle,
        ScenarioKind::Audit,
    ];
}

/// One concrete task the campaign will run: a kind, a region scope, and
/// (for firmware pushes) a target version.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The workflow shape.
    pub kind: ScenarioKind,
    /// Region scope as a device-name glob.
    pub scope: String,
    /// Target firmware version (used by [`ScenarioKind::Firmware`]).
    pub firmware: String,
}

impl Scenario {
    /// Task name for reports and metrics.
    pub fn name(&self) -> String {
        let kind = match self.kind {
            ScenarioKind::Maintenance => "maintenance",
            ScenarioKind::Firmware => "firmware",
            ScenarioKind::TestIpCycle => "test_ip_cycle",
            ScenarioKind::Audit => "audit",
        };
        format!("chaos.{kind}[{}]", self.scope)
    }

    /// Builds the re-runnable management program. The closure is `Fn` —
    /// it only reads the scenario — so a [`occam_core::RetryPolicy`] can
    /// re-execute it after transient aborts.
    pub fn program(&self) -> impl Fn(&TaskCtx) -> TaskResult<()> + Send + 'static {
        let kind = self.kind;
        let scope = self.scope.clone();
        let firmware = self.firmware.clone();
        move |ctx| match kind {
            ScenarioKind::Maintenance => {
                // DRAIN (PREPARE TEST UNPREPARE) UNDRAIN — an offline
                // block with a testing block inside, per Table 1.
                let region = ctx.network(&scope)?;
                region.apply("f_drain")?;
                region.apply("f_alloc_ip")?;
                region.apply("f_optic_test")?;
                region.apply("f_dealloc_ip")?;
                region.apply("f_undrain")?;
                region.close();
                Ok(())
            }
            ScenarioKind::Firmware => {
                // DRAIN (DB_CHANGE PUSH_CFG) UNDRAIN — the paper's
                // canonical firmware-upgrade shape.
                let region = ctx.network(&scope)?;
                region.apply("f_drain")?;
                region.set(attrs::FIRMWARE_VERSION, firmware.as_str().into())?;
                region.apply_with(
                    "f_push",
                    &FuncArgs::one("admin", "drained").with("firmware", &firmware),
                )?;
                region.apply("f_undrain")?;
                region.close();
                Ok(())
            }
            ScenarioKind::TestIpCycle => {
                let region = ctx.network(&scope)?;
                region.apply("f_alloc_ip")?;
                region.apply("f_optic_test")?;
                region.apply("f_dealloc_ip")?;
                region.close();
                Ok(())
            }
            ScenarioKind::Audit => {
                let region = ctx.network_read(&scope)?;
                let devices = region.devices()?;
                let statuses = region.get(attrs::DEVICE_STATUS)?;
                region.close();
                if statuses.len() > devices.len() {
                    return Err(occam_core::TaskError::Failed(
                        "audit saw more statuses than devices".into(),
                    ));
                }
                Ok(())
            }
        }
    }

    /// Verifies the fully-applied postcondition against both layers.
    /// Call with fault injection paused. `Ok(())` when it holds,
    /// `Err(description)` otherwise.
    pub fn check_postcondition(&self, db: &Database, service: &EmuService) -> Result<(), String> {
        let pat = Pattern::from_glob(&self.scope).map_err(|e| format!("bad scope: {e}"))?;
        match self.kind {
            ScenarioKind::Audit => Ok(()), // read-only; checked via snapshot equality
            ScenarioKind::Firmware => {
                let fw = db
                    .get_attr(&pat, attrs::FIRMWARE_VERSION)
                    .map_err(|e| format!("firmware read: {e}"))?;
                for (dev, v) in &fw {
                    if v.as_str() != Some(self.firmware.as_str()) {
                        return Err(format!("{dev}: db firmware {v:?} != {}", self.firmware));
                    }
                }
                self.check_devices(service, |dev, drained, firmware| {
                    if drained {
                        return Err(format!("{dev}: still drained after completed task"));
                    }
                    if firmware != self.firmware {
                        return Err(format!(
                            "{dev}: device firmware {firmware} != {}",
                            self.firmware
                        ));
                    }
                    Ok(())
                })
            }
            ScenarioKind::Maintenance => self
                .check_devices(service, |dev, drained, _| {
                    if drained {
                        return Err(format!("{dev}: still drained after completed task"));
                    }
                    Ok(())
                })
                .and_then(|()| self.check_no_test_ip(service)),
            ScenarioKind::TestIpCycle => self.check_no_test_ip(service),
        }
    }

    /// No device in scope may keep a leaked test IP.
    fn check_no_test_ip(&self, service: &EmuService) -> Result<(), String> {
        let pat = Pattern::from_glob(&self.scope).map_err(|e| format!("bad scope: {e}"))?;
        let net = service.net();
        let guard = net.lock();
        for (id, d) in guard.topo.devices() {
            if d.role == Role::Host || !pat.matches(&d.name) {
                continue;
            }
            let sw = guard.switch(id).expect("non-host switch");
            if sw.test_ip.is_some() {
                return Err(format!("{}: leaked test IP {:?}", d.name, sw.test_ip));
            }
        }
        Ok(())
    }

    fn check_devices(
        &self,
        service: &EmuService,
        mut f: impl FnMut(&str, bool, &str) -> Result<(), String>,
    ) -> Result<(), String> {
        let pat = Pattern::from_glob(&self.scope).map_err(|e| format!("bad scope: {e}"))?;
        let net = service.net();
        let guard = net.lock();
        for (id, d) in guard.topo.devices() {
            if d.role == Role::Host || !pat.matches(&d.name) {
                continue;
            }
            let sw = guard.switch(id).expect("non-host switch");
            f(&d.name, sw.drained, &sw.firmware)?;
        }
        Ok(())
    }
}
