//! The deterministic fault-campaign engine.
//!
//! A campaign builds a fresh emulated substrate, arms seeded fault
//! injectors at every stateful boundary — netdb queries, device-service
//! calls, periodic WAL crash points — and drives a seeded stream of
//! management tasks through the runtime under a retry policy. After every
//! task it checks the paper's recovery contract:
//!
//! - a task that **completed** must satisfy its scenario postcondition
//!   (fully applied);
//! - a task that **aborted** must, after mechanically executing its
//!   suggested rollback plan, leave the database *and* the devices
//!   byte-identical to the pre-task snapshot (fully rolled back).
//!
//! Any other outcome is an invariant violation and the headline failure
//! count of the campaign. Determinism contract: identical
//! [`CampaignConfig`]s produce identical [`CampaignReport`]s — tasks run
//! sequentially, every random stream is seeded, and verification runs
//! with injectors *paused* (pausing skips fault checks without advancing
//! their sequence counters, so the fault streams stay aligned).

use crate::report::CampaignReport;
use crate::scenario::{Scenario, ScenarioKind};
use crate::snapshot::StateSnapshot;
use occam_core::{execute_rollback, RetryPolicy, Runtime, TaskState};
use occam_emunet::{EmuNet, EmuService, FaultyService, LatencyPlan};
use occam_netdb::{attrs, db::Store, AttrValue, Database, FaultPlan, StoreSnapshot};
use occam_obs::{Counter, Registry};
use occam_sched::Policy;
use occam_topology::{FatTree, Role};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Salts XOR-ed into the campaign seed so each fault stream is
/// independent but reproducible.
const DB_SALT: u64 = 0xD1B2_54A3_2D92_3716;
const DEVICE_SALT: u64 = 0x9E6D_3A1F_4C85_02B7;
const LATENCY_SALT: u64 = 0x27D4_EB2F_1656_67C5;

/// Tuning for one campaign. Everything that affects behavior is here, so
/// config equality implies report equality.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed; derives every random stream in the campaign.
    pub seed: u64,
    /// Number of management tasks to drive.
    pub tasks: u32,
    /// Per-operation fault probability for both the netdb query injector
    /// and the device-service shim, in `[0, 1]`.
    pub fault_rate: f64,
    /// Retry policy for every task. Defaults to 3 attempts with a short
    /// seeded exponential backoff.
    pub retry: RetryPolicy,
    /// Simulate a crash (WAL dump → recover → compare) after every N
    /// tasks; `0` disables crash points.
    pub crash_every: u32,
    /// Wedge a seeded device (permanent fault) for every N-th task;
    /// `0` disables stuck devices.
    pub stuck_every: u32,
    /// Probability a device call takes a latency spike.
    pub latency_rate: f64,
    /// Latency-spike duration.
    pub latency: Duration,
    /// Gateway connection-chaos phase, when configured.
    pub gateway: Option<crate::gateway::GatewayChaosConfig>,
    /// Replication chaos phase (leader kill, partitions, rejoin), when
    /// configured.
    pub repl: Option<crate::repl::ReplChaosConfig>,
    /// Consistent-update chaos phase (mid-wave kill, faults during
    /// waves, concurrent conflicting plans), when configured.
    pub update: Option<crate::update::UpdateChaosConfig>,
    /// Optimistic-concurrency chaos phase (mixed OCC/2PL contention with
    /// the serializability certifier attached, fallback under faults),
    /// when configured.
    pub occ: Option<crate::occ::OccChaosConfig>,
    /// Declarative-spec chaos phase (specs killed mid-execution,
    /// compliance-view convergence), when configured.
    pub spec: Option<crate::spec::SpecChaosConfig>,
}

impl CampaignConfig {
    /// A campaign at `fault_rate` with the standard shape: 60 tasks,
    /// 3-attempt retries, crash point every 7 tasks, stuck device every
    /// 13th task, mild latency spikes, no gateway phase.
    pub fn at_rate(seed: u64, fault_rate: f64) -> CampaignConfig {
        CampaignConfig {
            seed,
            tasks: 60,
            fault_rate,
            retry: RetryPolicy::attempts(3)
                .with_backoff(Duration::from_micros(100), Duration::from_micros(400))
                .with_seed(seed),
            crash_every: 7,
            stuck_every: 13,
            latency_rate: 0.02,
            latency: Duration::from_micros(200),
            gateway: None,
            repl: None,
            update: None,
            occ: None,
            spec: None,
        }
    }
}

struct ChaosObs {
    tasks: Counter,
    completed: Counter,
    rolled_back: Counter,
    crashes: Counter,
    violations: Counter,
    db_faults: Counter,
    device_faults: Counter,
}

impl ChaosObs {
    fn bind(reg: &Registry) -> ChaosObs {
        reg.counter("chaos.campaigns").inc();
        ChaosObs {
            tasks: reg.counter("chaos.tasks"),
            completed: reg.counter("chaos.tasks.completed"),
            rolled_back: reg.counter("chaos.tasks.rolled_back"),
            crashes: reg.counter("chaos.crashes"),
            violations: reg.counter("chaos.invariant.violations"),
            db_faults: reg.counter("chaos.faults.db"),
            device_faults: reg.counter("chaos.faults.device"),
        }
    }
}

/// One seeded fault campaign over a fresh emulated substrate.
pub struct Campaign {
    cfg: CampaignConfig,
    reg: Registry,
    db: Arc<Database>,
    inner: Arc<EmuService>,
    faulty: Arc<FaultyService>,
    rt: Runtime,
    obs: ChaosObs,
    /// Region scopes the RNG draws from.
    scopes: Vec<String>,
    /// Single-device names the stuck-device fault draws from.
    singles: Vec<String>,
}

impl Campaign {
    /// Builds the substrate: a `FatTree(1, 4)` fabric, a database seeded
    /// with every non-host device (active, firmware `fw-1.0.0` — matching
    /// the emulated switch default so rollback can restore firmware from
    /// the database), and the two fault injectors armed from the config.
    pub fn new(cfg: CampaignConfig) -> Campaign {
        let reg = Registry::new();
        let ft = FatTree::build(1, 4).expect("k=4 fat tree");
        let db = Arc::new(Database::with_obs(&reg));
        let mut singles = Vec::new();
        for (_, d) in ft.topo.devices() {
            if d.role == Role::Host {
                continue;
            }
            db.insert_device(
                &d.name,
                vec![
                    (attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into()),
                    (attrs::FIRMWARE_VERSION.into(), AttrValue::from("fw-1.0.0")),
                ],
            )
            .expect("seed device");
            singles.push(d.name.clone());
        }
        singles.sort();
        let inner = Arc::new(EmuService::new(EmuNet::from_fattree(&ft)));
        let faulty = Arc::new(FaultyService::new(
            inner.clone(),
            FaultPlan::builder()
                .rate(cfg.fault_rate)
                .seed(cfg.seed ^ DEVICE_SALT)
                .build(),
        ));
        faulty.set_latency(LatencyPlan::new(
            cfg.latency_rate,
            cfg.latency,
            cfg.seed ^ LATENCY_SALT,
        ));
        // Arm the query injector only after seeding the database.
        db.set_fault_plan(
            FaultPlan::builder()
                .rate(cfg.fault_rate)
                .seed(cfg.seed ^ DB_SALT)
                .build(),
        );
        let rt = Runtime::with_obs(
            db.clone(),
            faulty.clone() as Arc<dyn occam_emunet::DeviceService>,
            Policy::Ldsf,
            &reg,
        );
        let obs = ChaosObs::bind(&reg);
        let scopes = vec![
            "dc01.pod00.*".to_string(),
            "dc01.pod01.*".to_string(),
            "dc01.pod02.*".to_string(),
            "dc01.pod03.*".to_string(),
            "dc01.core.*".to_string(),
            "dc01.pod00.agg00".to_string(),
            "dc01.pod01.tor01".to_string(),
            "dc01.pod02.agg01".to_string(),
            "dc01.pod03.tor00".to_string(),
        ];
        Campaign {
            cfg,
            reg,
            db,
            inner,
            faulty,
            rt,
            obs,
            scopes,
            singles,
        }
    }

    /// The campaign's shared metrics registry (`core.*`, `chaos.*`, …).
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// Pause (`false`) or resume (`true`) every fault layer without
    /// advancing the seeded streams.
    fn faults_enabled(&self, on: bool) {
        self.db.faults().set_enabled(on);
        self.faulty.set_enabled(on);
    }

    fn next_scenario(&self, rng: &mut StdRng, t: u32) -> Scenario {
        let kind = ScenarioKind::ALL[rng.random_range(0usize..ScenarioKind::ALL.len())];
        let scope = self.scopes[rng.random_range(0usize..self.scopes.len())].clone();
        Scenario {
            kind,
            scope,
            firmware: format!("fw-c{t}"),
        }
    }

    /// Runs the campaign to completion and returns its report.
    pub fn run(mut self) -> CampaignReport {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut report = CampaignReport {
            seed: self.cfg.seed,
            fault_rate: self.cfg.fault_rate,
            ..CampaignReport::default()
        };
        for t in 0..self.cfg.tasks {
            let scenario = self.next_scenario(&mut rng, t);
            let stuck = self.cfg.stuck_every > 0 && (t + 1) % self.cfg.stuck_every == 0;
            if stuck {
                let victim = &self.singles[rng.random_range(0usize..self.singles.len())];
                self.faulty.stick_device(victim.clone());
            }
            self.run_one(&scenario, &mut report);
            if stuck {
                self.faulty.unstick_all();
            }
            if self.cfg.crash_every > 0 && (t + 1) % self.cfg.crash_every == 0 {
                self.crash_point(&mut rng, &mut report);
            }
        }
        self.finish(report)
    }

    /// Runs one task and verifies the all-or-nothing contract.
    fn run_one(&mut self, scenario: &Scenario, report: &mut CampaignReport) {
        self.obs.tasks.inc();
        report.tasks += 1;
        // Snapshots bypass the injectors, so capturing is always safe.
        let pre = StateSnapshot::capture(&self.db, &self.inner);
        let task_report = self
            .rt
            .task(scenario.name())
            .retry(self.cfg.retry.clone())
            .run(scenario.program());
        // Verification and recovery run fault-free; pausing does not
        // advance the seeded streams.
        self.faults_enabled(false);
        match task_report.state {
            TaskState::Completed => {
                self.obs.completed.inc();
                report.completed += 1;
                let check = match scenario.kind {
                    // Read-only work must leave everything untouched.
                    ScenarioKind::Audit => {
                        let post = StateSnapshot::capture(&self.db, &self.inner);
                        pre.first_diff(&post)
                            .map(|d| format!("audit changed state: {d}"))
                            .map_or(Ok(()), Err)
                    }
                    _ => scenario.check_postcondition(&self.db, &self.inner),
                };
                if let Err(why) = check {
                    self.violation(report, format!("{}: {why}", scenario.name()));
                }
            }
            TaskState::Aborted => {
                if task_report.rollback.is_some() {
                    if let Err(e) =
                        execute_rollback(&task_report, &self.db, self.rt.service().as_ref())
                    {
                        self.violation(
                            report,
                            format!("{}: rollback failed fault-free: {e}", scenario.name()),
                        );
                    }
                }
                let post = StateSnapshot::capture(&self.db, &self.inner);
                match pre.first_diff(&post) {
                    None => {
                        self.obs.rolled_back.inc();
                        report.rolled_back += 1;
                    }
                    Some(diff) => self.violation(
                        report,
                        format!("{}: residue after rollback: {diff}", scenario.name()),
                    ),
                }
            }
            other => {
                self.violation(
                    report,
                    format!("{}: non-terminal final state {other:?}", scenario.name()),
                );
            }
        }
        self.faults_enabled(true);
    }

    /// Simulates a crash: the WAL must recover to exactly the live state,
    /// and replaying a seeded prefix (a torn shutdown) must be total and
    /// identical under the sharded and the naive replay implementations.
    fn crash_point(&mut self, rng: &mut StdRng, report: &mut CampaignReport) {
        self.faults_enabled(false);
        self.obs.crashes.inc();
        report.crashes += 1;
        let text = self.db.dump_wal();
        match Database::recover(&text) {
            Ok(recovered) => {
                if recovered.snapshot() != self.db.snapshot() {
                    self.violation(report, "WAL replay diverged from live state".to_string());
                }
            }
            Err(e) => self.violation(report, format!("WAL failed to decode: {e}")),
        }
        let records = self.db.wal_records();
        if !records.is_empty() {
            let k = rng.random_range(0usize..=records.len());
            let sharded = StoreSnapshot::replay(&records[..k]);
            if sharded != Store::replay(&records[..k]) {
                self.violation(
                    report,
                    format!("sharded replay diverged from naive replay at prefix {k}"),
                );
            }
            if let Err(e) = sharded.self_check() {
                self.violation(report, format!("sharded replay broke invariants: {e}"));
            }
        }
        self.faults_enabled(true);
    }

    fn violation(&self, report: &mut CampaignReport, why: String) {
        self.obs.violations.inc();
        report.invariant_violations += 1;
        if report.first_violation.is_none() {
            report.first_violation = Some(why);
        }
    }

    /// Folds the fault-layer counters into the report and runs the
    /// gateway and replication phases, if configured.
    fn finish(self, mut report: CampaignReport) -> CampaignReport {
        report.retries = self.reg.counter_value("core.task.retries");
        report.retry_rollback_failed = self.reg.counter_value("core.task.retry_rollback_failed");
        report.db_faults = self.db.faults().failures_injected();
        report.device_faults = self.faulty.injector().failures_injected();
        report.latency_spikes = self.faulty.spikes_fired();
        report.stuck_hits = self.faulty.stuck_hits();
        self.obs.db_faults.add(report.db_faults);
        self.obs.device_faults.add(report.device_faults);
        if let Some(gw_cfg) = &self.cfg.gateway {
            let gw = crate::gateway::run_gateway_phase(gw_cfg);
            report.invariant_violations += gw.leaked_records;
            if gw.leaked_records > 0 && report.first_violation.is_none() {
                report.first_violation =
                    Some(format!("{} gateway job records leaked", gw.leaked_records));
            }
            report.gateway = Some(gw);
        }
        if let Some(repl_cfg) = &self.cfg.repl {
            let repl = crate::repl::run_repl_phase(repl_cfg);
            report.invariant_violations += repl.violations;
            if repl.violations > 0 && report.first_violation.is_none() {
                report.first_violation = repl.first_violation.clone();
            }
            report.repl = Some(repl);
        }
        if let Some(update_cfg) = &self.cfg.update {
            let update = crate::update::run_update_phase(update_cfg);
            report.invariant_violations += update.violations;
            if update.violations > 0 && report.first_violation.is_none() {
                report.first_violation = update.first_violation.clone();
            }
            report.update = Some(update);
        }
        if let Some(occ_cfg) = &self.cfg.occ {
            let occ = crate::occ::run_occ_phase(occ_cfg);
            report.invariant_violations += occ.violations;
            if occ.violations > 0 && report.first_violation.is_none() {
                report.first_violation = occ.first_violation.clone();
            }
            report.occ = Some(occ);
        }
        if let Some(spec_cfg) = &self.cfg.spec {
            let spec = crate::spec::run_spec_phase(spec_cfg);
            report.invariant_violations += spec.violations;
            if spec.violations > 0 && report.first_violation.is_none() {
                report.first_violation = spec.first_violation.clone();
            }
            report.spec = Some(spec);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_campaign_completes_everything() {
        let mut cfg = CampaignConfig::at_rate(7, 0.0);
        cfg.tasks = 12;
        cfg.stuck_every = 0;
        cfg.latency_rate = 0.0;
        let report = Campaign::new(cfg).run();
        assert_eq!(report.tasks, 12);
        assert_eq!(report.completed, 12);
        assert_eq!(report.rolled_back, 0);
        assert_eq!(
            report.invariant_violations, 0,
            "{:?}",
            report.first_violation
        );
        assert_eq!(report.db_faults + report.device_faults, 0);
        assert!(report.crashes > 0);
    }

    #[test]
    fn faulty_campaign_rolls_back_and_holds_invariants() {
        let mut cfg = CampaignConfig::at_rate(42, 0.10);
        cfg.tasks = 30;
        let report = Campaign::new(cfg).run();
        assert_eq!(report.tasks, 30);
        assert_eq!(report.completed + report.rolled_back, 30);
        assert_eq!(
            report.invariant_violations, 0,
            "{:?}",
            report.first_violation
        );
        assert!(
            report.db_faults + report.device_faults + report.stuck_hits > 0,
            "a 10% campaign must actually inject faults"
        );
        assert!(report.retries > 0, "transient aborts must be retried");
    }

    #[test]
    fn identical_seeds_produce_identical_reports() {
        let mut cfg = CampaignConfig::at_rate(1234, 0.15);
        cfg.tasks = 25;
        let a = Campaign::new(cfg.clone()).run();
        let b = Campaign::new(cfg).run();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.invariant_violations, 0, "{:?}", a.first_violation);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut c1 = CampaignConfig::at_rate(1, 0.15);
        c1.tasks = 25;
        let mut c2 = CampaignConfig::at_rate(2, 0.15);
        c2.tasks = 25;
        let a = Campaign::new(c1).run();
        let b = Campaign::new(c2).run();
        // Same shape, different fault stream: the counter sets should not
        // coincide (astronomically unlikely at 15%).
        assert_ne!(
            (a.db_faults, a.device_faults, a.retries, a.completed),
            (b.db_faults, b.device_faults, b.retries, b.completed)
        );
    }
}
