//! Campaign outcome accounting.
//!
//! Reports are fully deterministic for a given `(config, seed)`: they
//! carry counters only — no wall-clock times, no host-dependent values —
//! so byte-identical JSON across runs is the campaign determinism
//! contract the tests and the bench harness assert.

/// Outcome of the gateway connection-chaos phase.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct GatewayChaosReport {
    /// Submission slots the phase attempted (normal + chaotic).
    pub submissions: u64,
    /// Submissions the engine admitted.
    pub accepted: u64,
    /// Admitted tasks that reached `Completed`.
    pub completed: u64,
    /// Connections dropped mid-frame (partial SUBMIT, then reset).
    pub partial_drops: u64,
    /// Connections dropped after a full SUBMIT, before reading the reply.
    pub vanish_drops: u64,
    /// Connections dropped after a pipelined batch of SUBMIT frames,
    /// before reading any reply (reactor batch-admission path).
    pub batch_vanish_drops: u64,
    /// Job records left non-terminal after drain — must be 0.
    pub leaked_records: u64,
}

impl GatewayChaosReport {
    fn to_json(&self) -> String {
        format!(
            "{{\"submissions\":{},\"accepted\":{},\"completed\":{},\"partial_drops\":{},\"vanish_drops\":{},\"batch_vanish_drops\":{},\"leaked_records\":{}}}",
            self.submissions,
            self.accepted,
            self.completed,
            self.partial_drops,
            self.vanish_drops,
            self.batch_vanish_drops,
            self.leaked_records
        )
    }
}

/// Outcome of the replication chaos phase (DESIGN.md §14): leader kill
/// mid-commit, follower partition mid-catch-up, crash-and-rejoin.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ReplChaosReport {
    /// Writes committed on the leader(s) across all sub-phases.
    pub writes: u64,
    /// Commits acknowledged by the quorum when the leader was killed.
    pub acked_before_kill: u64,
    /// Commits the dead leader held that no follower had confirmed —
    /// allowed to die with it (unacknowledged ≠ durable).
    pub unacked_at_kill: u64,
    /// Follower links partitioned and healed.
    pub partitions: u64,
    /// Followers crashed with total state loss and re-bootstrapped.
    pub rejoins: u64,
    /// Id of the follower promoted at failover.
    pub promoted: u32,
    /// Acknowledged commits missing from the promoted leader — the
    /// headline durability number; must be 0.
    pub lost_acked: u64,
    /// Invariant violations detected in the phase — must be 0.
    pub violations: u64,
    /// First violation description, when any occurred.
    pub first_violation: Option<String>,
}

impl ReplChaosReport {
    fn to_json(&self) -> String {
        let first_violation = match &self.first_violation {
            Some(v) => format!("\"{}\"", json_escape(v)),
            None => "null".to_string(),
        };
        format!(
            "{{\"writes\":{},\"acked_before_kill\":{},\"unacked_at_kill\":{},\"partitions\":{},\"rejoins\":{},\"promoted\":{},\"lost_acked\":{},\"violations\":{},\"first_violation\":{}}}",
            self.writes,
            self.acked_before_kill,
            self.unacked_at_kill,
            self.partitions,
            self.rejoins,
            self.promoted,
            self.lost_acked,
            self.violations,
            first_violation
        )
    }
}

/// Outcome of the consistent-update chaos phase (DESIGN.md §15):
/// mid-wave kill, device faults during waves, and concurrent conflicting
/// planned updates, with the invariant checker run at every intermediate
/// publication.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct UpdateChaosReport {
    /// Plans synthesized across the campaigns.
    pub plans: u64,
    /// Waves across all synthesized plans.
    pub waves_planned: u64,
    /// Intermediate publications the invariant checker audited.
    pub publications_checked: u64,
    /// Plan executions killed mid-wave by cancellation.
    pub cancelled_runs: u64,
    /// Waves committed by the re-planned (resumed) execution.
    pub resumed_waves: u64,
    /// Transient device faults injected while waves executed.
    pub device_faults: u64,
    /// Wave-task retry attempts the runtime made under faults.
    pub retries: u64,
    /// Concurrent conflicting plan executions driven to completion.
    pub concurrent_runs: u64,
    /// Devices left with attributes from two different plans — must be 0.
    pub torn_configs: u64,
    /// Invariant violations detected in the phase — must be 0.
    pub violations: u64,
    /// First violation description, when any occurred.
    pub first_violation: Option<String>,
}

impl UpdateChaosReport {
    fn to_json(&self) -> String {
        let first_violation = match &self.first_violation {
            Some(v) => format!("\"{}\"", json_escape(v)),
            None => "null".to_string(),
        };
        format!(
            "{{\"plans\":{},\"waves_planned\":{},\"publications_checked\":{},\"cancelled_runs\":{},\"resumed_waves\":{},\"device_faults\":{},\"retries\":{},\"concurrent_runs\":{},\"torn_configs\":{},\"violations\":{},\"first_violation\":{}}}",
            self.plans,
            self.waves_planned,
            self.publications_checked,
            self.cancelled_runs,
            self.resumed_waves,
            self.device_faults,
            self.retries,
            self.concurrent_runs,
            self.torn_configs,
            self.violations,
            first_violation
        )
    }
}

/// Outcome of the optimistic-concurrency chaos phase (DESIGN.md §16):
/// mixed OCC/2PL writers contending on one row with the serializability
/// certifier attached, plus OCC tasks forced to fall back to 2PL under
/// seeded device faults.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct OccChaosReport {
    /// Read-modify-write increment tasks run in the contended campaign.
    pub increment_tasks: u64,
    /// Increments missing from the final counter — must be 0.
    pub lost_updates: u64,
    /// Footprints the certifier ingested from committed tasks.
    pub certified_commits: u64,
    /// Apply-bearing OCC tasks run in the fallback campaign.
    pub fallback_tasks: u64,
    /// 2PL fallbacks the runtime fired (`core.occ.fallbacks`).
    pub fallbacks_fired: u64,
    /// Fallback tasks that exhausted their retries under faults.
    pub exhausted_retries: u64,
    /// Transient device faults injected in the fallback campaign.
    pub device_faults: u64,
    /// Retry attempts the runtime made in the fallback campaign.
    pub retries: u64,
    /// Invariant violations detected in the phase — must be 0.
    pub violations: u64,
    /// First violation description, when any occurred.
    pub first_violation: Option<String>,
}

impl OccChaosReport {
    fn to_json(&self) -> String {
        let first_violation = match &self.first_violation {
            Some(v) => format!("\"{}\"", json_escape(v)),
            None => "null".to_string(),
        };
        format!(
            "{{\"increment_tasks\":{},\"lost_updates\":{},\"certified_commits\":{},\"fallback_tasks\":{},\"fallbacks_fired\":{},\"exhausted_retries\":{},\"device_faults\":{},\"retries\":{},\"violations\":{},\"first_violation\":{}}}",
            self.increment_tasks,
            self.lost_updates,
            self.certified_commits,
            self.fallback_tasks,
            self.fallbacks_fired,
            self.exhausted_retries,
            self.device_faults,
            self.retries,
            self.violations,
            first_violation
        )
    }
}

/// Outcome of the declarative-spec chaos phase (DESIGN.md §17): specs
/// submitted mid-campaign and killed mid-execution, with the incremental
/// compliance view asserted to converge — every task ends all-compliant
/// with its declared state or byte-identical to the pre-task snapshot —
/// and every audit cross-checked against a cold recompute.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SpecChaosReport {
    /// Spec programs compiled and submitted across the campaigns.
    pub specs_run: u64,
    /// Specs that reached `Completed` with their scope verified compliant.
    pub completed: u64,
    /// Specs that aborted and were verified byte-identical rolled back.
    pub rolled_back: u64,
    /// Specs deterministically killed mid-execution by a wedged device.
    pub kills: u64,
    /// Killed specs whose clean re-submission drove the compliance view
    /// to all-compliant.
    pub converged: u64,
    /// Compliance-view refreshes evaluated through the view cache.
    pub audits: u64,
    /// Refreshes that disagreed with a cold recompute — must be 0.
    pub incremental_mismatches: u64,
    /// Invariant violations detected in the phase — must be 0.
    pub violations: u64,
    /// First violation description, when any occurred.
    pub first_violation: Option<String>,
}

impl SpecChaosReport {
    fn to_json(&self) -> String {
        let first_violation = match &self.first_violation {
            Some(v) => format!("\"{}\"", json_escape(v)),
            None => "null".to_string(),
        };
        format!(
            "{{\"specs_run\":{},\"completed\":{},\"rolled_back\":{},\"kills\":{},\"converged\":{},\"audits\":{},\"incremental_mismatches\":{},\"violations\":{},\"first_violation\":{}}}",
            self.specs_run,
            self.completed,
            self.rolled_back,
            self.kills,
            self.converged,
            self.audits,
            self.incremental_mismatches,
            self.violations,
            first_violation
        )
    }
}

/// Outcome of one seeded campaign. All fields are counters; see the
/// module docs for the determinism contract.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CampaignReport {
    /// The campaign seed.
    pub seed: u64,
    /// Fault rate (per stateful operation) the campaign ran at.
    pub fault_rate: f64,
    /// Tasks attempted.
    pub tasks: u64,
    /// Tasks that ended `Completed` (postcondition verified).
    pub completed: u64,
    /// Tasks that ended `Aborted` and were verified fully rolled back.
    pub rolled_back: u64,
    /// Retry attempts the runtime made (`core.task.retries`).
    pub retries: u64,
    /// Inter-attempt rollbacks that failed (`core.task.retry_rollback_failed`).
    pub retry_rollback_failed: u64,
    /// Faults injected by the netdb query injector.
    pub db_faults: u64,
    /// Faults injected by the device-service shim.
    pub device_faults: u64,
    /// Latency spikes fired by the device-service shim.
    pub latency_spikes: u64,
    /// Calls failed against wedged (stuck) devices.
    pub stuck_hits: u64,
    /// Simulated crash-and-replay points exercised.
    pub crashes: u64,
    /// Invariant violations detected — the headline number; must be 0.
    pub invariant_violations: u64,
    /// First violation description, when any occurred.
    pub first_violation: Option<String>,
    /// Gateway phase outcome, when the phase ran.
    pub gateway: Option<GatewayChaosReport>,
    /// Replication phase outcome, when the phase ran.
    pub repl: Option<ReplChaosReport>,
    /// Consistent-update phase outcome, when the phase ran.
    pub update: Option<UpdateChaosReport>,
    /// Optimistic-concurrency phase outcome, when the phase ran.
    pub occ: Option<OccChaosReport>,
    /// Declarative-spec phase outcome, when the phase ran.
    pub spec: Option<SpecChaosReport>,
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl CampaignReport {
    /// Renders the report as one deterministic JSON object (fixed key
    /// order, no whitespace).
    pub fn to_json(&self) -> String {
        let gateway = match &self.gateway {
            Some(g) => g.to_json(),
            None => "null".to_string(),
        };
        let repl = match &self.repl {
            Some(r) => r.to_json(),
            None => "null".to_string(),
        };
        let update = match &self.update {
            Some(u) => u.to_json(),
            None => "null".to_string(),
        };
        let occ = match &self.occ {
            Some(o) => o.to_json(),
            None => "null".to_string(),
        };
        let spec = match &self.spec {
            Some(s) => s.to_json(),
            None => "null".to_string(),
        };
        let first_violation = match &self.first_violation {
            Some(v) => format!("\"{}\"", json_escape(v)),
            None => "null".to_string(),
        };
        format!(
            "{{\"seed\":{},\"fault_rate\":{},\"tasks\":{},\"completed\":{},\"rolled_back\":{},\"retries\":{},\"retry_rollback_failed\":{},\"db_faults\":{},\"device_faults\":{},\"latency_spikes\":{},\"stuck_hits\":{},\"crashes\":{},\"invariant_violations\":{},\"first_violation\":{},\"gateway\":{},\"repl\":{},\"update\":{},\"occ\":{},\"spec\":{}}}",
            self.seed,
            self.fault_rate,
            self.tasks,
            self.completed,
            self.rolled_back,
            self.retries,
            self.retry_rollback_failed,
            self.db_faults,
            self.device_faults,
            self.latency_spikes,
            self.stuck_hits,
            self.crashes,
            self.invariant_violations,
            first_violation,
            gateway,
            repl,
            update,
            occ,
            spec
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_escapes() {
        let mut r = CampaignReport {
            seed: 42,
            fault_rate: 0.05,
            tasks: 10,
            completed: 8,
            rolled_back: 2,
            ..CampaignReport::default()
        };
        assert_eq!(r.to_json(), r.clone().to_json());
        assert!(r.to_json().contains("\"fault_rate\":0.05"));
        assert!(r.to_json().ends_with(
            "\"gateway\":null,\"repl\":null,\"update\":null,\"occ\":null,\"spec\":null}"
        ));
        r.repl = Some(ReplChaosReport {
            writes: 3,
            ..ReplChaosReport::default()
        });
        assert!(r.to_json().contains("\"repl\":{\"writes\":3,"));
        r.first_violation = Some("say \"what\"\n".into());
        assert!(r.to_json().contains("say \\\"what\\\"\\n"));
    }
}
