//! Whole-stack state snapshots for campaign invariant checking.
//!
//! The chaos invariant is the paper's recovery contract: after any task —
//! including one the fault layers aborted — the world is either *fully
//! applied* (the task's postcondition holds) or *fully rolled back*
//! (logical **and** physical state byte-identical to before the task).
//! Checking the second half needs an equality-comparable capture of both
//! layers, which this module provides.

use occam_emunet::{EmuService, FlowClass, SwitchState};
use occam_netdb::{Database, StoreSnapshot};
use occam_topology::Role;
use std::collections::BTreeMap;

/// The fault-relevant state of one emulated switch.
///
/// This is [`SwitchState`] minus `config_generation`: the generation
/// counter is bumped by *every* config push, including the compensating
/// push a rollback performs, so it legitimately differs between "never
/// happened" and "happened and was rolled back". Everything management
/// tasks actually control is compared exactly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeviceFingerprint {
    /// Drain state.
    pub drained: bool,
    /// Mid-upgrade flag (an undrained upgrading switch black-holes).
    pub upgrading: bool,
    /// Installed firmware version.
    pub firmware: String,
    /// Running data-plane program.
    pub dataplane: String,
    /// Temporary test IP, if allocated.
    pub test_ip: Option<String>,
    /// ACL denylist, as stable class names.
    pub denylist: Vec<&'static str>,
}

fn class_name(c: FlowClass) -> &'static str {
    match c {
        FlowClass::Background => "background",
        FlowClass::Suspicious => "suspicious",
        FlowClass::Inspected => "inspected",
    }
}

impl DeviceFingerprint {
    fn of(s: &SwitchState) -> DeviceFingerprint {
        DeviceFingerprint {
            drained: s.drained,
            upgrading: s.upgrading,
            firmware: s.firmware.clone(),
            dataplane: s.dataplane.clone(),
            test_ip: s.test_ip.clone(),
            denylist: s.denylist.iter().map(|&c| class_name(c)).collect(),
        }
    }
}

/// A point-in-time capture of the logical layer (a [`StoreSnapshot`]
/// handle — an O(1) capture even at production scale) and the physical
/// layer (per-device fingerprints).
#[derive(Clone, PartialEq, Debug)]
pub struct StateSnapshot {
    /// The database contents.
    pub db: StoreSnapshot,
    /// Device name → fingerprint, for every non-host device.
    pub devices: BTreeMap<String, DeviceFingerprint>,
}

impl StateSnapshot {
    /// Captures both layers. Reads the database through
    /// [`Database::snapshot`] (which bypasses the fault injector) and the
    /// emulated network under its lock, so a capture is safe even while
    /// fault plans are armed.
    pub fn capture(db: &Database, service: &EmuService) -> StateSnapshot {
        let net = service.net();
        let guard = net.lock();
        let mut devices = BTreeMap::new();
        for (id, d) in guard.topo.devices() {
            if d.role == Role::Host {
                continue;
            }
            let sw = guard.switch(id).expect("switch state for non-host");
            devices.insert(d.name.clone(), DeviceFingerprint::of(sw));
        }
        StateSnapshot {
            db: db.read_view().into_snapshot(),
            devices,
        }
    }

    /// Human-oriented summary of the first difference against `other`,
    /// for violation reports. `None` when equal.
    pub fn first_diff(&self, other: &StateSnapshot) -> Option<String> {
        if self.db != other.db {
            // Materialize only on the failure path: diff wants the flat
            // representation, and violations are the rare case.
            let entries = occam_netdb::diff(&self.db.materialize(), &other.db.materialize());
            return Some(match entries.first() {
                Some(e) => format!("database stores differ, first: {e:?}"),
                None => "database stores differ".into(),
            });
        }
        for (name, fp) in &self.devices {
            match other.devices.get(name) {
                None => return Some(format!("device {name} missing from other snapshot")),
                Some(o) if o != fp => {
                    return Some(format!("device {name} differs: {fp:?} vs {o:?}"))
                }
                Some(_) => {}
            }
        }
        if self.devices.len() != other.devices.len() {
            return Some("device sets differ".into());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_emunet::{EmuNet, FuncArgs};
    use occam_topology::FatTree;
    use std::sync::Arc;

    #[test]
    fn snapshot_ignores_config_generation_but_sees_real_changes() {
        let ft = FatTree::build(1, 4).unwrap();
        let db = Database::new();
        db.insert_device("dc01.pod00.agg00", vec![]).unwrap();
        let svc = Arc::new(EmuService::new(EmuNet::from_fattree(&ft)));
        let devs = vec!["dc01.pod00.agg00".to_string()];
        let before = StateSnapshot::capture(&db, &svc);

        // A config push bumps only the generation counter: invisible.
        use occam_emunet::DeviceService;
        svc.execute("f_push", &devs, &FuncArgs::one("admin", "active"))
            .unwrap();
        let after_push = StateSnapshot::capture(&db, &svc);
        assert_eq!(before, after_push);
        assert!(before.first_diff(&after_push).is_none());

        // A drain is a real physical difference.
        svc.execute("f_drain", &devs, &FuncArgs::none()).unwrap();
        let after_drain = StateSnapshot::capture(&db, &svc);
        assert_ne!(before, after_drain);
        assert!(before
            .first_diff(&after_drain)
            .unwrap()
            .contains("dc01.pod00.agg00"));
    }
}
