//! Gateway connection chaos: drops and resets mid-frame.
//!
//! The service frontend has its own failure surface the task layers never
//! see: clients that die mid-frame, clients that submit work and vanish
//! before reading the reply, and — on the reactor's batch-admission path —
//! clients that pipeline several SUBMIT frames and vanish before reading
//! any reply. This phase drives all three against a real
//! [`GatewayServer`] over loopback and then audits the engine's job
//! table: a partial SUBMIT must never create a job record (admission
//! happens only after a full decode), and a vanished client's jobs —
//! single or pipelined — must still run to a terminal phase; nothing may
//! be left queued or running after drain.
//!
//! Determinism: the phase runs sequentially (pool size 1, one connection
//! at a time) and synchronizes on the engine's own counters between
//! steps, so the resulting [`GatewayChaosReport`] depends only on the
//! config.

use crate::report::GatewayChaosReport;
use occam_core::Runtime;
use occam_emunet::{EmuNet, EmuService};
use occam_gateway::proto::{write_frame, Request};
use occam_gateway::{Engine, EngineConfig, GatewayClient, GatewayServer, SubmitReply};
use occam_netdb::{attrs, Database};
use occam_topology::{FatTree, Role};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// SUBMIT frames pipelined by the batch-then-vanish fault.
const BATCH_VANISH: usize = 3;

/// Tuning for the gateway chaos phase.
#[derive(Clone, Debug)]
pub struct GatewayChaosConfig {
    /// Total submission slots (normal + chaotic).
    pub submissions: u32,
    /// Every N-th slot is a chaotic connection (cycling partial-frame
    /// drop, submit-then-vanish, and pipelined-batch-then-vanish); `0`
    /// disables chaos.
    pub drop_every: u32,
}

impl Default for GatewayChaosConfig {
    fn default() -> GatewayChaosConfig {
        GatewayChaosConfig {
            submissions: 24,
            drop_every: 3,
        }
    }
}

fn substrate() -> Engine {
    let ft = FatTree::build(1, 4).expect("k=4 fat tree");
    let db = Arc::new(Database::new());
    for (_, d) in ft.topo.devices() {
        if d.role == Role::Host {
            continue;
        }
        db.insert_device(
            &d.name,
            vec![(attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into())],
        )
        .expect("seed device");
    }
    let rt = Runtime::new(db, Arc::new(EmuService::new(EmuNet::from_fattree(&ft))));
    Engine::new(
        rt,
        EngineConfig {
            pool_size: 1,
            queue_cap: 4,
            retry_after_ms: 1,
            ..EngineConfig::default()
        },
    )
}

/// Spins until `probe()` is true or ~5s pass (returns whether it held).
fn wait_until(mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if probe() {
            return true;
        }
        std::thread::yield_now();
    }
    probe()
}

/// Runs the phase against a fresh fault-free substrate (the chaos here is
/// connection-level, injected by construction every `drop_every`-th slot).
pub fn run_gateway_phase(cfg: &GatewayChaosConfig) -> GatewayChaosReport {
    let engine = substrate();
    let server = GatewayServer::start(engine.clone(), "127.0.0.1:0").expect("loopback listener");
    let addr = server.local_addr().to_string();
    let reg = engine.runtime().obs().clone();

    let mut report = GatewayChaosReport {
        submissions: cfg.submissions as u64,
        ..GatewayChaosReport::default()
    };
    let mut expected_accepted: u64 = 0;
    let mut chaotic_slots: u64 = 0;
    let submit_body = Request::Submit {
        workflow: "drain".into(),
        scope: "dc01.pod00.*".into(),
        urgent: false,
        params: Vec::new(),
    }
    .encode();

    for i in 0..cfg.submissions {
        let chaotic = cfg.drop_every > 0 && (i + 1) % cfg.drop_every == 0;
        if chaotic {
            chaotic_slots += 1;
            match chaotic_slots % 3 {
                1 => {
                    // Partial frame: length prefix plus half the body, then
                    // a hard drop. The server must tear the connection down
                    // without admitting anything.
                    let mut s = TcpStream::connect(&addr).expect("connect");
                    s.write_all(&(submit_body.len() as u32).to_be_bytes())
                        .expect("length prefix");
                    s.write_all(&submit_body[..submit_body.len() / 2])
                        .expect("half body");
                    drop(s);
                    report.partial_drops += 1;
                }
                2 => {
                    // Full SUBMIT, then vanish before the reply. The job is
                    // admitted and must still run to a terminal phase.
                    let mut s = TcpStream::connect(&addr).expect("connect");
                    write_frame(&mut s, &submit_body).expect("frame");
                    expected_accepted += 1;
                    // Don't advance until the engine has actually admitted
                    // it, so counters can't race the next slot.
                    wait_until(|| {
                        reg.counter_value("gateway.submit.accepted") >= expected_accepted
                    });
                    drop(s);
                    report.vanish_drops += 1;
                }
                _ => {
                    // Pipelined batch, then vanish before any reply: the
                    // reactor decodes all three frames off one readiness
                    // event and admits them as one engine batch; every one
                    // must still run to a terminal phase.
                    let mut s = TcpStream::connect(&addr).expect("connect");
                    for _ in 0..BATCH_VANISH {
                        write_frame(&mut s, &submit_body).expect("frame");
                    }
                    expected_accepted += BATCH_VANISH as u64;
                    wait_until(|| {
                        reg.counter_value("gateway.submit.accepted") >= expected_accepted
                    });
                    drop(s);
                    report.batch_vanish_drops += 1;
                }
            }
        } else {
            // Normal client: alternate drain/undrain so the region state
            // stays well-formed, and wait for the terminal phase.
            let workflow = if i % 2 == 0 { "drain" } else { "undrain" };
            let mut client = GatewayClient::connect(&addr).expect("connect");
            client
                .set_timeout(Some(Duration::from_secs(5)))
                .expect("timeout");
            loop {
                match client
                    .submit(workflow, "dc01.pod00.*", false, &[])
                    .expect("submit")
                {
                    SubmitReply::Accepted(ticket) => {
                        expected_accepted += 1;
                        wait_until(
                            || matches!(client.status(ticket), Ok((p, _)) if p.is_terminal()),
                        );
                        break;
                    }
                    SubmitReply::Busy(_) => std::thread::yield_now(),
                    SubmitReply::Rejected(code, msg) => {
                        panic!("unexpected rejection: {code:?} {msg}")
                    }
                }
            }
            drop(client);
        }
        // Every slot used exactly one connection; let the server finish
        // accounting for it before the next slot starts.
        wait_until(|| reg.counter_value("gateway.conn.closed") >= (i + 1) as u64);
    }

    engine.shutdown();
    report.accepted = reg.counter_value("gateway.submit.accepted");
    report.completed = reg.counter_value("gateway.tasks.completed");
    report.leaked_records = engine
        .terminal_breakdown()
        .iter()
        .filter(|((_, phase), _)| matches!(*phase, "queued" | "running"))
        .map(|(_, n)| n)
        .sum();
    let mut server = server;
    server.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_phase_never_leaks_job_records() {
        let report = run_gateway_phase(&GatewayChaosConfig {
            submissions: 12,
            drop_every: 3,
        });
        // 4 chaotic slots cycle partial → vanish → batch-vanish → partial.
        assert_eq!(report.partial_drops, 2);
        assert_eq!(report.vanish_drops, 1);
        assert_eq!(report.batch_vanish_drops, 1);
        // 8 normal + 1 vanished + 3 batch-vanished submissions were
        // admitted; partial frames never were.
        assert_eq!(report.accepted, 12);
        assert_eq!(report.completed, 12);
        assert_eq!(report.leaked_records, 0);
    }
}
