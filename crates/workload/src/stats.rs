//! A generative model of the paper's Figure 1 statistics.
//!
//! The paper characterizes one month of Meta's workflow system: 234
//! workflow programs, ~50% executed at least once, a heavy-tailed
//! execution-frequency curve (top workflow ≈ 15k runs/month, ~10 above
//! 1000), heavy-tailed execution times, the number of building blocks per
//! workflow, BB reuse, daily overlapping-instance pairs (150–200), and
//! devices-per-workflow spanning from a few to tens of thousands. This
//! module synthesizes a month shaped like that and measures the same six
//! statistics from the synthetic data — nothing is hard-coded to the
//! published values, so the `fig01` experiment genuinely measures its
//! inputs.

use crate::dist::{self, Zipf};
use occam_topology::ProductionScheme;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the Figure 1 model.
#[derive(Clone, Debug)]
pub struct MetaStatsConfig {
    /// Number of workflow programs in the repository.
    pub num_workflows: usize,
    /// Fraction of programs executed at least once in the window.
    pub executed_fraction: f64,
    /// Runs of the most frequent workflow over the window.
    pub top_runs: f64,
    /// Zipf exponent of the frequency curve.
    pub freq_exponent: f64,
    /// Number of distinct building blocks in the library.
    pub num_bbs: usize,
    /// Measurement window in days.
    pub days: u32,
    /// Network scale (for device counts and pod buckets).
    pub scheme: ProductionScheme,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MetaStatsConfig {
    fn default() -> Self {
        MetaStatsConfig {
            num_workflows: 234,
            executed_fraction: 0.5,
            top_runs: 15_000.0,
            freq_exponent: 1.2,
            num_bbs: 120,
            days: 30,
            scheme: ProductionScheme::meta_scale(),
            seed: 11,
        }
    }
}

/// The measured statistics (one value series per Figure 1 panel).
#[derive(Clone, Debug, Default)]
pub struct MetaStats {
    /// Fig 1a: executions per workflow over the window, descending.
    pub exec_counts: Vec<u64>,
    /// Fig 1b: sampled execution times (hours) of all runs.
    pub exec_times: Vec<f64>,
    /// Fig 1c: number of BBs per workflow.
    pub bbs_per_workflow: Vec<usize>,
    /// Fig 1d: for each BB, how many workflows use it (descending).
    pub bb_reuse: Vec<usize>,
    /// Fig 1e: overlapping-instance pairs per day.
    pub overlap_pairs_per_day: Vec<u64>,
    /// Fig 1f: devices touched per workflow, one entry per workflow.
    pub devices_per_workflow: Vec<u64>,
}

impl MetaStats {
    /// Fraction of `xs` strictly above `threshold`.
    pub fn fraction_above(xs: &[f64], threshold: f64) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter().filter(|&&x| x > threshold).count() as f64 / xs.len() as f64
    }

    /// Empirical CDF points `(value, fraction ≤ value)` at the given
    /// percentile grid.
    pub fn cdf(xs: &[f64], points: usize) -> Vec<(f64, f64)> {
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (0..=points)
            .map(|i| {
                let q = i as f64 / points as f64;
                let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
                (sorted[idx], q)
            })
            .collect()
    }
}

fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation for large rates.
        let x = lambda + lambda.sqrt() * dist::standard_normal(rng);
        return x.max(0.0).round() as u64;
    }
    // Knuth's method.
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Generates a synthetic month and measures the Figure 1 statistics.
pub fn generate(cfg: &MetaStatsConfig) -> MetaStats {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let executed = ((cfg.num_workflows as f64) * cfg.executed_fraction).round() as usize;

    // Fig 1a: frequency curve for executed workflows; the rest ran zero
    // times.
    let mut exec_counts: Vec<u64> = (1..=executed)
        .map(|rank| Zipf::scaled_weight(cfg.top_runs, cfg.freq_exponent, rank).round() as u64)
        .map(|c| c.max(1))
        .collect();
    exec_counts.extend(std::iter::repeat_n(0u64, cfg.num_workflows - executed));

    // Fig 1c/1d: BB composition. Popular BBs are shared by many workflows.
    let bb_pop = Zipf::new(cfg.num_bbs, 1.0);
    let mut bbs_per_workflow = Vec::with_capacity(cfg.num_workflows);
    let mut bb_reuse = vec![0usize; cfg.num_bbs];
    for _ in 0..cfg.num_workflows {
        let n = (1.0 + dist::log_normal(&mut rng, 1.3, 0.7)).min(30.0) as usize;
        let mut chosen = std::collections::HashSet::new();
        let mut guard = 0;
        while chosen.len() < n && guard < n * 20 {
            chosen.insert(bb_pop.sample(&mut rng) - 1);
            guard += 1;
        }
        for &b in &chosen {
            bb_reuse[b] += 1;
        }
        bbs_per_workflow.push(chosen.len());
    }
    bb_reuse.sort_unstable_by(|a, b| b.cmp(a));

    // Fig 1f: devices per workflow, a few up to tens of thousands. A small
    // fraction of workflows (fleet-wide monitoring, OS rollouts) touch a
    // large share of all devices.
    let max_devices = cfg.scheme.total_devices();
    let devices_per_workflow: Vec<u64> = (0..cfg.num_workflows)
        .map(|_| {
            if rng.random::<f64>() < 0.04 {
                rng.random_range(10_000..=max_devices)
            } else {
                (dist::log_normal(&mut rng, 2.2, 2.4).round() as u64).clamp(1, max_devices)
            }
        })
        .collect();

    // Fig 1b + 1e: simulate the month of runs. Monitoring-style workflows
    // (the most frequent handful) watch the network; the rest mutate
    // devices and can collide. A run occupies one pod bucket for its
    // duration.
    let monitoring_ranks = 12usize;
    // Mutating operations concentrate on the actively-managed part of the
    // fleet (roughly half the pods at any time), and a workflow's
    // device-touching window is a small slice of its total runtime (most of
    // a 100-hour run is waiting and monitoring).
    let managed_pods = ((cfg.scheme.num_dcs * cfg.scheme.pods_per_dc) / 2) as usize;
    let mut exec_times = Vec::new();
    // Active mutating runs per (day, pod): counts device-op occupancy.
    let days = cfg.days as usize;
    let mut occupancy = vec![std::collections::HashMap::<usize, u64>::new(); days];
    for (rank0, &count) in exec_counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let per_day = count as f64 / cfg.days as f64;
        let mutating = rank0 >= monitoring_ranks;
        for day_occupancy in occupancy.iter_mut() {
            let runs = poisson(&mut rng, per_day);
            for _ in 0..runs {
                let dur_h = dist::log_normal(&mut rng, 0.3, 4.0).clamp(0.05, 300.0);
                // Sample a subset of runs for the CDF to bound memory.
                if exec_times.len() < 60_000 {
                    exec_times.push(dur_h);
                }
                if mutating {
                    let pod = rng.random_range(0..managed_pods);
                    *day_occupancy.entry(pod).or_insert(0) += 1;
                }
            }
        }
    }
    let overlap_pairs_per_day: Vec<u64> = occupancy
        .iter()
        .map(|m| m.values().map(|&n| n * n.saturating_sub(1) / 2).sum())
        .collect();

    MetaStats {
        exec_counts,
        exec_times,
        bbs_per_workflow,
        bb_reuse,
        overlap_pairs_per_day,
        devices_per_workflow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> MetaStats {
        generate(&MetaStatsConfig::default())
    }

    #[test]
    fn fig1a_heavy_tail_shape() {
        let s = stats();
        assert_eq!(s.exec_counts.len(), 234);
        // Top workflow around 15k runs/month.
        assert!(
            (14_000..=16_000).contains(&s.exec_counts[0]),
            "{}",
            s.exec_counts[0]
        );
        // About ten workflows above 1000 runs.
        let over_1000 = s.exec_counts.iter().filter(|&&c| c > 1000).count();
        assert!((7..=14).contains(&over_1000), "{over_1000}");
        // Roughly half executed at least once.
        let executed = s.exec_counts.iter().filter(|&&c| c > 0).count();
        assert_eq!(executed, 117);
    }

    #[test]
    fn fig1b_execution_time_tail() {
        let s = stats();
        let over_1h = MetaStats::fraction_above(&s.exec_times, 1.0);
        let over_100h = MetaStats::fraction_above(&s.exec_times, 100.0);
        assert!((0.40..=0.65).contains(&over_1h), "P(>1h) = {over_1h}");
        assert!((0.08..=0.30).contains(&over_100h), "P(>100h) = {over_100h}");
    }

    #[test]
    fn fig1c_bbs_per_workflow_plausible() {
        let s = stats();
        assert_eq!(s.bbs_per_workflow.len(), 234);
        let mean =
            s.bbs_per_workflow.iter().sum::<usize>() as f64 / s.bbs_per_workflow.len() as f64;
        assert!((2.0..=12.0).contains(&mean), "mean BBs {mean}");
        assert!(s.bbs_per_workflow.iter().all(|&n| (1..=30).contains(&n)));
    }

    #[test]
    fn fig1d_bb_reuse_is_skewed() {
        let s = stats();
        // The most popular BB is used by many workflows; the tail by few.
        assert!(s.bb_reuse[0] >= 20, "top reuse {}", s.bb_reuse[0]);
        let unused_or_rare = s.bb_reuse.iter().filter(|&&r| r <= 2).count();
        assert!(unused_or_rare > 10, "rare BBs {unused_or_rare}");
    }

    #[test]
    fn fig1e_overlap_pairs_in_published_range() {
        let s = stats();
        let mean = s.overlap_pairs_per_day.iter().sum::<u64>() as f64
            / s.overlap_pairs_per_day.len() as f64;
        assert!(
            (100.0..=320.0).contains(&mean),
            "mean overlapping pairs/day = {mean} (paper: 150-200)"
        );
    }

    #[test]
    fn fig1f_devices_span_orders_of_magnitude() {
        let s = stats();
        let min = *s.devices_per_workflow.iter().min().unwrap();
        let max = *s.devices_per_workflow.iter().max().unwrap();
        assert!(min <= 5, "min {min}");
        assert!(max >= 10_000, "max {max}");
    }

    #[test]
    fn cdf_helper_is_monotone() {
        let s = stats();
        let cdf = MetaStats::cdf(&s.exec_times, 20);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = stats();
        let b = stats();
        assert_eq!(a.exec_counts, b.exec_counts);
        assert_eq!(a.overlap_pairs_per_day, b.overlap_pairs_per_day);
    }
}
