//! # occam-workload
//!
//! Workload synthesis shaped like the Meta production trace the Occam
//! paper characterizes (§2.2) and samples from (§8.1).
//!
//! Two layers:
//!
//! - [`trace`]: parametric synthesis of management-task traces — Poisson
//!   arrivals, heavy-tailed log-normal execution times (calibrated so
//!   roughly half of executions exceed one hour and a fifth exceed 100
//!   hours, per Figure 1b), scope sampling from a handful of devices up to
//!   whole datacenters, read/write mixes, urgency, and the skewed-contention
//!   variant used by Figure 11.
//! - [`stats`]: a generative model of the paper's Figure 1 (workflow
//!   frequency, execution times, building-block composition and reuse,
//!   daily overlapping-instance pairs, devices per workflow), measured from
//!   synthetic data rather than hard-coded.
//!
//! Distribution samplers (exponential, log-normal, Zipf, weighted picks)
//! are implemented in [`dist`] to keep the dependency set minimal.

pub mod dist;
pub mod stats;
pub mod trace;

pub use stats::{generate as generate_meta_stats, MetaStats, MetaStatsConfig};
pub use trace::{synthesize, ScopeWeights, Skew, TaskSpec, TraceConfig};
