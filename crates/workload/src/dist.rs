//! Seeded distribution samplers.
//!
//! Implemented here rather than pulling `rand_distr`: the workload model
//! needs exponential, log-normal, Zipf, and weighted-categorical sampling,
//! all reproducible under a fixed seed.

use rand::Rng;

/// Samples an exponential with the given rate (events per unit time).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.random::<f64>().max(1e-12);
    -u.ln() / rate
}

/// Samples a standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a log-normal: `exp(mu + sigma * Z)`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// A Zipf sampler over ranks `1..=n` with exponent `s` (precomputed CDF).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `n` must be ≥ 1.
    pub fn new(n: usize, s: f64) -> Zipf {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// The unnormalized Zipf weight of rank `k` scaled so rank 1 has weight
    /// `top` — used to synthesize execution-frequency curves.
    pub fn scaled_weight(top: f64, s: f64, k: usize) -> f64 {
        top / (k as f64).powf(s)
    }
}

/// Picks an index according to the (non-negative) weights.
pub fn weighted_pick<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must not all be zero");
    let mut u: f64 = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut r = rng(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_mean_and_variance() {
        let mut r = rng(2);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.06, "var {var}");
    }

    #[test]
    fn log_normal_median() {
        let mut r = rng(3);
        let n = 20_001;
        let mut xs: Vec<f64> = (0..n).map(|_| log_normal(&mut r, 1.0, 2.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        // Median of log-normal is exp(mu) = e.
        assert!(
            (median / std::f64::consts::E - 1.0).abs() < 0.1,
            "median {median}"
        );
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut r = rng(4);
        let z = Zipf::new(100, 1.2);
        let n = 20_000;
        let mut counts = vec![0u32; 101];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[1] as f64 / n as f64 > 0.15);
    }

    #[test]
    fn zipf_samples_in_range() {
        let mut r = rng(5);
        let z = Zipf::new(7, 0.8);
        for _ in 0..1000 {
            let k = z.sample(&mut r);
            assert!((1..=7).contains(&k));
        }
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut r = rng(6);
        let w = [0.0, 3.0, 1.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[weighted_pick(&mut r, &w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn determinism_under_seed() {
        let seq = |seed| {
            let mut r = rng(seed);
            (0..10)
                .map(|_| exponential(&mut r, 1.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(42), seq(42));
        assert_ne!(seq(42), seq(43));
    }
}
