//! Synthesis of management-task traces shaped like the Meta dataset.
//!
//! The paper's at-scale experiments (§8.1) sample task arrival times,
//! execution times, network scopes, and read/write mix from a 5-month
//! production trace. This module reproduces the published *distributional
//! shape*: heavy-tailed execution times (roughly half of executions above
//! one hour, a fifth above 100 hours), scopes from a handful of devices up
//! to whole datacenters, and Poisson arrivals over the measurement window.

use crate::dist;
use occam_topology::{ProductionScheme, RegionSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How task scopes are drawn.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ScopeWeights {
    /// A handful of explicit devices within one pod.
    pub device_set: f64,
    /// One whole pod.
    pub pod: f64,
    /// A contiguous range of pods.
    pub pod_range: f64,
    /// A whole datacenter.
    pub dc: f64,
}

impl Default for ScopeWeights {
    fn default() -> Self {
        // Matches Figure 1f's spread: mostly small scopes, a heavy tail up
        // to datacenter-sized regions (whole-DC reservations exist but are
        // rare — the paper notes only *some* workflows reserve entire
        // datacenters).
        ScopeWeights {
            device_set: 0.45,
            pod: 0.32,
            pod_range: 0.21,
            dc: 0.02,
        }
    }
}

/// Configuration of a synthesized trace.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Number of tasks to synthesize (the paper uses 2000 per run).
    pub num_tasks: usize,
    /// Arrival window in hours (tasks arrive Poisson over this window).
    pub window_hours: f64,
    /// Multiplier on the arrival rate (Figure 9a scales this by 2/4/6 by
    /// *shrinking* the window).
    pub arrival_scale: f64,
    /// Fraction of tasks that only read (S locks); the rest write (X).
    pub read_fraction: f64,
    /// Fraction of tasks flagged urgent.
    pub urgent_fraction: f64,
    /// Log-normal execution-time parameters (hours): `exp(mu + sigma Z)`.
    pub exec_mu: f64,
    /// Log-normal sigma.
    pub exec_sigma: f64,
    /// Execution times clamp to this range (hours).
    pub exec_clamp: (f64, f64),
    /// Scope-kind mixture.
    pub scopes: ScopeWeights,
    /// When set, concentrates this fraction of tasks onto `hot_pods`
    /// pods of datacenter 1 (the skewed-contention trace of Figure 11).
    pub skew: Option<Skew>,
    /// Naming scheme (scale of the network).
    pub scheme: ProductionScheme,
    /// RNG seed.
    pub seed: u64,
}

/// Skewed-contention configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Skew {
    /// Fraction of tasks landing in the hot region.
    pub hot_fraction: f64,
    /// Number of hot pods (all in datacenter 1).
    pub hot_pods: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            num_tasks: 2000,
            window_hours: 30.0 * 24.0,
            arrival_scale: 1.0,
            read_fraction: 0.5,
            urgent_fraction: 0.0,
            // Calibrated to Figure 1b: ~half of executions over 1 hour,
            // a heavy tail above 100 hours.
            exec_mu: 0.2,
            exec_sigma: 3.5,
            exec_clamp: (0.05, 150.0),
            scopes: ScopeWeights::default(),
            skew: None,
            scheme: ProductionScheme::meta_scale(),
            seed: 7,
        }
    }
}

impl TraceConfig {
    /// A write-heavy variant (Figure 9b): ~95% writes.
    pub fn write_heavy(mut self) -> Self {
        self.read_fraction = 0.05;
        self
    }

    /// A read-heavy variant (Figure 9c): ~95% reads.
    pub fn read_heavy(mut self) -> Self {
        self.read_fraction = 0.95;
        self
    }

    /// Scales the arrival rate by `k` (Figure 9a).
    pub fn scaled_arrivals(mut self, k: f64) -> Self {
        self.arrival_scale = k;
        self
    }

    /// The skewed-contention trace of Figure 11.
    pub fn skewed(mut self) -> Self {
        self.skew = Some(Skew {
            hot_fraction: 0.7,
            hot_pods: 4,
        });
        self
    }
}

/// One synthesized management task.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Task identifier (dense, 0-based).
    pub id: u64,
    /// Arrival time in hours from trace start.
    pub arrival: f64,
    /// Execution time in hours once all locks are held.
    pub duration: f64,
    /// The network region the task operates on.
    pub region: RegionSpec,
    /// True for writing tasks (X locks); false for read-only (S locks).
    pub write: bool,
    /// Urgent (outage-recovery) flag.
    pub urgent: bool,
}

/// Synthesizes a trace from the configuration.
pub fn synthesize(cfg: &TraceConfig) -> Vec<TaskSpec> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let window = cfg.window_hours / cfg.arrival_scale.max(1e-9);
    let mut tasks = Vec::with_capacity(cfg.num_tasks);
    let mut clock = 0.0;
    // Poisson arrivals: exponential gaps with mean window / n.
    let rate = cfg.num_tasks as f64 / window;
    for id in 0..cfg.num_tasks as u64 {
        clock += dist::exponential(&mut rng, rate);
        let raw = dist::log_normal(&mut rng, cfg.exec_mu, cfg.exec_sigma);
        let duration = raw.clamp(cfg.exec_clamp.0, cfg.exec_clamp.1);
        let region = sample_region(&mut rng, cfg);
        let write = rng.random::<f64>() < write_probability(cfg, &region);
        let urgent = rng.random::<f64>() < cfg.urgent_fraction;
        tasks.push(TaskSpec {
            id,
            arrival: clock,
            duration,
            region,
            write,
            urgent,
        });
    }
    tasks
}

/// Write probability, correlated with scope size: the fleet-wide and
/// DC-wide scopes in the trace are dominated by monitoring/audit reads,
/// while small scopes are mostly mutating maintenance (matching the Meta
/// workload characterization: the most frequent large-scope workflows are
/// monitoring tasks). The configuration's `read_fraction` shifts the whole
/// mixture: at 0.5 the per-kind base rates apply, and the write-heavy /
/// read-heavy variants push every kind toward X or S.
fn write_probability(cfg: &TraceConfig, region: &RegionSpec) -> f64 {
    let base = match region {
        RegionSpec::Devices(_) => 0.75,
        RegionSpec::Pod { .. } => 0.50,
        RegionSpec::PodRange { .. } => 0.25,
        RegionSpec::Dc(_) => 0.08,
    };
    (base + (0.5 - cfg.read_fraction)).clamp(0.0, 1.0)
}

fn sample_region(rng: &mut StdRng, cfg: &TraceConfig) -> RegionSpec {
    let scheme = &cfg.scheme;
    // Skew: most tasks land on a few hot pods of dc 1. A share of them
    // span several hot pods, so partially-granted tasks hold some hot
    // objects while waiting on others — the dependency-set structure that
    // separates LDSF from FIFO (Figure 11).
    if let Some(skew) = cfg.skew {
        if rng.random::<f64>() < skew.hot_fraction {
            let hot = skew.hot_pods.min(scheme.pods_per_dc).max(1);
            if hot >= 2 && rng.random::<f64>() < 0.35 {
                let span = rng.random_range(2..=hot);
                let lo = rng.random_range(0..=hot - span);
                return RegionSpec::PodRange {
                    dc: 1,
                    lo,
                    hi: lo + span - 1,
                };
            }
            let pod = rng.random_range(0..hot);
            return RegionSpec::Pod { dc: 1, pod };
        }
    }
    let w = [
        cfg.scopes.device_set,
        cfg.scopes.pod,
        cfg.scopes.pod_range,
        cfg.scopes.dc,
    ];
    let dc = rng.random_range(1..=scheme.num_dcs);
    match dist::weighted_pick(rng, &w) {
        0 => {
            let pod = rng.random_range(0..scheme.pods_per_dc);
            let n = 1 + (dist::log_normal(rng, 1.0, 1.0) as u32).min(scheme.switches_per_pod - 1);
            let mut devs: Vec<u32> = (0..n)
                .map(|_| scheme.device_index(dc, pod, rng.random_range(0..scheme.switches_per_pod)))
                .collect();
            devs.sort_unstable();
            devs.dedup();
            RegionSpec::Devices(devs)
        }
        1 => RegionSpec::Pod {
            dc,
            pod: rng.random_range(0..scheme.pods_per_dc),
        },
        2 => {
            let span = 2 + (dist::log_normal(rng, 0.7, 0.8) as u32).min(14);
            let lo = rng.random_range(0..scheme.pods_per_dc.saturating_sub(span).max(1));
            RegionSpec::PodRange {
                dc,
                lo,
                hi: (lo + span - 1).min(scheme.pods_per_dc - 1),
            }
        }
        _ => RegionSpec::Dc(dc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let cfg = TraceConfig {
            num_tasks: 50,
            ..TraceConfig::default()
        };
        let a = synthesize(&cfg);
        let b = synthesize(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.region, y.region);
        }
    }

    #[test]
    fn arrivals_are_increasing_and_in_window() {
        let cfg = TraceConfig {
            num_tasks: 500,
            ..TraceConfig::default()
        };
        let tasks = synthesize(&cfg);
        for w in tasks.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        // Mean arrival gap should be near window / n.
        let span = tasks.last().unwrap().arrival;
        assert!(
            span > cfg.window_hours * 0.7 && span < cfg.window_hours * 1.3,
            "{span}"
        );
    }

    #[test]
    fn execution_times_match_figure_1b_shape() {
        let cfg = TraceConfig {
            num_tasks: 5000,
            ..TraceConfig::default()
        };
        let tasks = synthesize(&cfg);
        let over_1h = tasks.iter().filter(|t| t.duration > 1.0).count() as f64;
        let over_100h = tasks.iter().filter(|t| t.duration > 100.0).count() as f64;
        let n = tasks.len() as f64;
        let f1 = over_1h / n;
        let f100 = over_100h / n;
        assert!((0.42..=0.62).contains(&f1), "P(>1h) = {f1}");
        assert!((0.07..=0.28).contains(&f100), "P(>100h) = {f100}");
    }

    #[test]
    fn scope_sizes_span_orders_of_magnitude() {
        let cfg = TraceConfig {
            num_tasks: 2000,
            ..TraceConfig::default()
        };
        let tasks = synthesize(&cfg);
        let sizes: Vec<u64> = tasks
            .iter()
            .map(|t| t.region.device_count(&cfg.scheme))
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min <= 20, "smallest scope {min}");
        assert_eq!(
            max,
            cfg.scheme.devices_per_dc() as u64,
            "largest scope is a DC"
        );
    }

    #[test]
    fn arrival_scaling_compresses_window() {
        let base = TraceConfig {
            num_tasks: 400,
            ..TraceConfig::default()
        };
        let fast = base.clone().scaled_arrivals(4.0);
        let t1 = synthesize(&base);
        let t4 = synthesize(&fast);
        let span1 = t1.last().unwrap().arrival;
        let span4 = t4.last().unwrap().arrival;
        assert!(
            span4 < span1 / 2.5,
            "4x arrivals should compress the window: {span1} vs {span4}"
        );
    }

    #[test]
    fn read_write_mix_variants() {
        // Write probability is correlated with scope size (large scopes are
        // monitoring reads), so the heavy variants shift the mixture
        // strongly without reaching 100%/0%.
        let n = 2000;
        let mk = |cfg: TraceConfig| {
            let t = synthesize(&TraceConfig {
                num_tasks: n,
                ..cfg
            });
            t.iter().filter(|t| t.write).count() as f64 / n as f64
        };
        let base = mk(TraceConfig::default());
        let wr = mk(TraceConfig::default().write_heavy());
        let rd = mk(TraceConfig::default().read_heavy());
        assert!(wr > 0.85, "write-heavy: {wr}");
        assert!(rd < 0.25, "read-heavy: {rd}");
        assert!(rd < base && base < wr, "{rd} < {base} < {wr}");
        // Large scopes lean read, small scopes lean write, in every mix.
        let t = synthesize(&TraceConfig {
            num_tasks: n,
            ..TraceConfig::default()
        });
        let frac_write = |f: &dyn Fn(&TaskSpec) -> bool| {
            let sel: Vec<&TaskSpec> = t.iter().filter(|s| f(s)).collect();
            sel.iter().filter(|s| s.write).count() as f64 / sel.len().max(1) as f64
        };
        let small = frac_write(&|s| matches!(s.region, RegionSpec::Devices(_)));
        let large = frac_write(&|s| matches!(s.region, RegionSpec::Dc(_)));
        assert!(small > large, "small {small} vs large {large}");
    }

    #[test]
    fn skew_concentrates_on_hot_pods() {
        let cfg = TraceConfig {
            num_tasks: 1000,
            ..TraceConfig::default()
        }
        .skewed();
        let tasks = synthesize(&cfg);
        let hot = tasks
            .iter()
            .filter(|t| match t.region {
                RegionSpec::Pod { dc: 1, pod } => pod < 4,
                RegionSpec::PodRange { dc: 1, hi, .. } => hi < 4,
                _ => false,
            })
            .count() as f64;
        assert!(hot / 1000.0 > 0.6, "hot fraction {}", hot / 1000.0);
    }
}
