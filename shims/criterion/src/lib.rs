//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this shim provides the
//! subset the workspace's benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`] / [`Bencher::iter_batched_ref`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark runs a short calibration pass, then a fixed
//! measurement pass, and prints the mean wall-clock time per iteration —
//! no warm-up analysis, outlier rejection, or HTML reports.

use std::time::{Duration, Instant};

/// Target wall-clock time for one benchmark's measurement pass.
const MEASURE_TARGET: Duration = Duration::from_millis(300);

/// How inputs are batched for `iter_batched*` (accepted for API
/// compatibility; batching here is always one input per iteration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Setup output consumed once per batch.
    PerIteration,
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    /// Total routine time accumulated by the last `iter*` call.
    elapsed: Duration,
    /// Iterations performed by the last `iter*` call.
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let per_iter = calibrate(|| {
            std::hint::black_box(routine());
        });
        let n = iters_for(per_iter);
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = n;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let per_iter = calibrate(|| {
            std::hint::black_box(routine(setup()));
        });
        let n = iters_for(per_iter);
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = n;
    }

    /// Like [`iter_batched`](Bencher::iter_batched) but the routine gets a
    /// mutable reference and the input is dropped outside the timing.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let per_iter = calibrate(|| {
            let mut input = setup();
            std::hint::black_box(routine(&mut input));
        });
        let n = iters_for(per_iter);
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = n;
    }
}

/// One timed run of `f`, used to size the measurement pass.
fn calibrate(mut f: impl FnMut()) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed().max(Duration::from_nanos(1))
}

fn iters_for(per_iter: Duration) -> u64 {
    (MEASURE_TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Criterion {
        Criterion {}
    }

    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        println!("{name:<40} {:>12}   ({} iters)", fmt_ns(mean_ns), b.iters);
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Groups benchmark functions under one runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut count = 0u64;
        Criterion::new().bench_function("shim/self_test", |b| {
            b.iter(|| count += 1);
        });
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_fresh_inputs() {
        let mut seen = Vec::new();
        Criterion::new().bench_function("shim/batched", |b| {
            let mut n = 0u64;
            b.iter_batched(
                move || {
                    n += 1;
                    n
                },
                |v| seen.push(v),
                BatchSize::SmallInput,
            );
        });
        assert!(!seen.is_empty());
        // Each iteration received a distinct fresh input.
        let mut dedup = seen.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len());
    }

    #[test]
    fn iter_batched_ref_mutates_input() {
        Criterion::new().bench_function("shim/batched_ref", |b| {
            b.iter_batched_ref(
                || vec![1u8],
                |v| {
                    v.push(2);
                    assert_eq!(v.len(), 2);
                },
                BatchSize::SmallInput,
            );
        });
    }
}
