//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so this shim provides the
//! subset of the `parking_lot` API the workspace uses (`Mutex`, `RwLock`,
//! `Condvar`) on top of `std::sync`. Semantics match parking_lot where it
//! matters here: `lock()`/`read()`/`write()` return guards directly (no
//! poisoning — a poisoned std lock is recovered transparently), and
//! `Condvar::wait` takes a `&mut MutexGuard`.

use std::sync;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_mut_guard(&mut guard.inner, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Blocks until notified or `timeout` elapses, releasing the guard's
    /// mutex while waiting. Mirrors `parking_lot::Condvar::wait_for`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_mut_guard(&mut guard.inner, |g| {
            let (g, r) = match self.inner.wait_timeout(g, timeout) {
                Ok(pair) => pair,
                Err(p) => p.into_inner(),
            };
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Result of a timed condition-variable wait (see [`Condvar::wait_for`]).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait returned because the timeout elapsed rather than
    /// a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Replaces a guard in place through a consuming closure. The closure runs
/// while the slot holds no guard; `std::sync::Condvar::wait` never panics
/// between taking and returning the guard, so the brief hole is safe.
fn take_mut_guard<'a, T: ?Sized>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is a valid guard; we read it out, pass ownership to
    // `f`, and write the returned guard back before anyone can observe the
    // moved-from slot. If `f` panicked the process would abort via the
    // double-drop guard below, never touching the hole.
    unsafe {
        let old = std::ptr::read(slot);
        let abort_on_panic = AbortOnDrop;
        let new = f(old);
        std::mem::forget(abort_on_panic);
        std::ptr::write(slot, new);
    }
}

struct AbortOnDrop;

impl Drop for AbortOnDrop {
    fn drop(&mut self) {
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
