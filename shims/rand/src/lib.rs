//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build container has no crates.io access, so this shim provides the
//! subset the workspace uses: [`Rng::random`], [`Rng::random_range`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. The generator is
//! SplitMix64 — statistically fine for workload synthesis and fault
//! injection, deterministic per seed, and dependency-free. Streams differ
//! from upstream `StdRng` (ChaCha12), so seeded traces are reproducible
//! within this repo but not against the real crate.

/// Sources of raw random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly from an [`Rng`] (the `StandardUniform`
/// distribution of upstream rand, restricted to what the workspace uses).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widen to i128 so spans crossing zero cannot overflow.
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                if span >= u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span as u64 + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_sint!(i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step — bias is < 2^-32 for the spans used here).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.random_range(5usize..=5);
            assert_eq!(y, 5);
            let z = r.random_range(10_000u64..=20_000);
            assert!((10_000..=20_000).contains(&z));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.random_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from 1000");
        }
    }
}
