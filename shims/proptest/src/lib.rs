//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this shim implements the
//! subset of the proptest API the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! weighted [`prop_oneof!`], [`collection::vec`], [`sample::select`],
//! [`bool::weighted`], `any::<T>()`, string strategies from
//! `[class]{lo,hi}` regex literals, and the [`proptest!`] test macro with
//! `#![proptest_config(..)]`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (override with `PROPTEST_SEED` / `PROPTEST_CASES`), and
//! there is **no shrinking** — a failing case panics with its case index
//! and seed so it can be replayed, but is not minimized.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// The random source passed to strategies.
pub type TestRng = StdRng;

/// Why a test case did not pass: rejected (re-rolled, from
/// [`prop_assume!`]) or failed (reported as a test failure).
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's inputs did not satisfy a precondition; try another.
    Reject(String),
    /// The property does not hold for this case.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

/// Outcome of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the
    /// strategy-so-far and returns a strategy that may embed it. Expanded
    /// eagerly to `depth` levels (the `_desired_size` and `_branch_size`
    /// hints are accepted for signature compatibility and ignored).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            // Keep leaves reachable at every level so generation cannot
            // favour ever-deeper nesting.
            cur = OneOf::new(vec![(1, base.clone()), (2, recurse(cur).boxed())]).boxed();
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between boxed alternatives ([`prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds a weighted choice; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        let total = arms.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.random_range(0..self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.random::<f64>()
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// An inclusive size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>` with target sizes drawn from a
    /// [`SizeRange`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.random_range(self.size.lo..=self.size.hi);
            let mut set = std::collections::BTreeSet::new();
            // Duplicates collapse; bound the retries so narrow element
            // domains cannot loop forever (the set may come up short).
            let mut attempts = 0;
            while set.len() < n && attempts < n * 10 + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Generates ordered sets of `element` aiming for sizes in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }

    /// Picks uniformly from the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty options");
        Select { options }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy returned by [`weighted`].
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random::<f64>() < self.p
        }
    }

    /// Generates `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }
}

/// String strategies from a small regex subset: character classes `[...]`,
/// escapes, literals, and groups `(...)`, each with an optional `{lo,hi}`,
/// `*`, `+`, or `?` repetition. No alternation. This covers the string
/// strategies used by the workspace's fuzz tests.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let (elems, end) = parse_seq(&chars, 0);
        assert_eq!(end, chars.len(), "unbalanced group in {self:?}");
        let mut out = String::new();
        gen_seq(&elems, rng, &mut out);
        out
    }
}

/// One parsed pattern element plus its repetition bounds.
enum PatElem {
    /// A character class (ranges, negated?).
    Class(Vec<(char, char)>, bool, usize, usize),
    /// A parenthesized subsequence.
    Group(Vec<PatElem>, usize, usize),
}

/// Parses a sequence until end of input or an unmatched `)`.
fn parse_seq(chars: &[char], mut i: usize) -> (Vec<PatElem>, usize) {
    let mut elems = Vec::new();
    while i < chars.len() && chars[i] != ')' {
        assert_ne!(
            chars[i], '|',
            "alternation not supported in string strategies"
        );
        if chars[i] == '(' {
            let (inner, close) = parse_seq(chars, i + 1);
            assert_eq!(chars.get(close), Some(&')'), "unterminated group");
            let (lo, hi, next) = parse_repeat(chars, close + 1);
            elems.push(PatElem::Group(inner, lo, hi));
            i = next;
        } else {
            let (ranges, negated, after) = parse_class(chars, i);
            let (lo, hi, next) = parse_repeat(chars, after);
            elems.push(PatElem::Class(ranges, negated, lo, hi));
            i = next;
        }
    }
    (elems, i)
}

fn gen_seq(elems: &[PatElem], rng: &mut TestRng, out: &mut String) {
    for e in elems {
        match e {
            PatElem::Class(ranges, negated, lo, hi) => {
                let n = rng.random_range(*lo..=*hi);
                for _ in 0..n {
                    out.push(pick_char(ranges, *negated, rng));
                }
            }
            PatElem::Group(inner, lo, hi) => {
                let n = rng.random_range(*lo..=*hi);
                for _ in 0..n {
                    gen_seq(inner, rng, out);
                }
            }
        }
    }
}

/// Parses one class/escape/literal starting at `i`; returns
/// (ranges, negated, next_i).
fn parse_class(chars: &[char], i: usize) -> (Vec<(char, char)>, bool, usize) {
    match chars[i] {
        '[' => {
            let mut j = i + 1;
            let negated = chars.get(j) == Some(&'^');
            if negated {
                j += 1;
            }
            let mut ranges = Vec::new();
            while j < chars.len() && chars[j] != ']' {
                let lo = if chars[j] == '\\' {
                    j += 1;
                    chars[j]
                } else {
                    chars[j]
                };
                // Range `x-y` (a trailing `-` right before `]` is literal).
                if chars.get(j + 1) == Some(&'-') && chars.get(j + 2).is_some_and(|&c| c != ']') {
                    let hi = if chars[j + 2] == '\\' {
                        j += 1;
                        chars[j + 2]
                    } else {
                        chars[j + 2]
                    };
                    ranges.push((lo, hi));
                    j += 3;
                } else {
                    ranges.push((lo, lo));
                    j += 1;
                }
            }
            (ranges, negated, j + 1)
        }
        '\\' => (vec![(chars[i + 1], chars[i + 1])], false, i + 2),
        '.' => (vec![(' ', '~')], false, i + 1),
        c => (vec![(c, c)], false, i + 1),
    }
}

/// Parses a repetition suffix at `i`; returns (lo, hi, next_i).
fn parse_repeat(chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated {n,m} in string strategy")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad lower bound"),
                    hi.trim().parse().expect("bad upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            };
            (lo, hi, close + 1)
        }
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        Some('?') => (0, 1, i + 1),
        _ => (1, 1, i),
    }
}

fn pick_char(ranges: &[(char, char)], negated: bool, rng: &mut TestRng) -> char {
    if negated {
        loop {
            let c = rng.random_range(0x20u32..0x7f) as u8 as char;
            if !ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&c)) {
                return c;
            }
        }
    }
    let total: u32 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
        .sum();
    let mut pick = rng.random_range(0..total);
    for &(lo, hi) in ranges {
        let span = hi as u32 - lo as u32 + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick).expect("valid char range");
        }
        pick -= span;
    }
    unreachable!("pick < total")
}

/// Drives one [`proptest!`] test: runs `config.cases` successful cases,
/// re-rolling rejected ones (from `prop_assume!`), panicking on failure
/// with a replayable seed.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let cases: u32 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(config.cases);
    let base: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
        ^ fnv64(name.as_bytes());
    let mut passed = 0u32;
    let mut attempt = 0u64;
    let mut rejected = 0u64;
    while passed < cases {
        let seed = base.wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        attempt += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng))) {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejected += 1;
                if rejected > u64::from(cases) * 16 {
                    panic!("proptest {name}: too many prop_assume! rejections ({rejected})");
                }
            }
            Ok(Err(TestCaseError::Fail(reason))) => {
                panic!("proptest {name}: case {passed} failed: {reason} (case seed {seed:#x})");
            }
            Err(payload) => {
                eprintln!(
                    "[proptest shim] {name}: case {passed} failed \
                     (replay with PROPTEST_SEED such that case seed = {seed:#x})"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Weighted/unweighted choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Rejects the current case (re-rolled without counting against `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items.
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ($($strat,)+);
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                let ($($arg,)+) = $crate::Strategy::generate(&__strategy, __rng);
                (|| -> $crate::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_and_map() {
        let strat = (1u32..4, 0usize..2).prop_map(|(a, b)| a as usize + b);
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..=4).contains(&v));
        }
    }

    use rand::SeedableRng;

    #[test]
    fn oneof_respects_weights_loosely() {
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::TestRng::seed_from_u64(2);
        let trues = (0..1000).filter(|_| strat.generate(&mut rng)).count();
        assert!(trues > 800, "got {trues}");
    }

    #[test]
    fn collection_vec_sizes() {
        let strat = crate::collection::vec(0u8..10, 2..5);
        let mut rng = crate::TestRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    #[test]
    fn string_pattern_strategy() {
        let strat = "[a-c]{2,4}";
        let mut rng = crate::TestRng::seed_from_u64(4);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!((2..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
        let printable = "[ -~]{0,8}";
        for _ in 0..100 {
            let s = printable.generate(&mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
        // Optional group, as used by the from_names fuzz strategy.
        let grouped = "[a-c]{1,4}(\\.[a-c0-3]{1,3})?";
        for _ in 0..100 {
            let s = grouped.generate(&mut rng);
            let mut parts = s.split('.');
            let head = parts.next().unwrap();
            assert!((1..=4).contains(&head.len()), "{s:?}");
            assert!(head.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            if let Some(tail) = parts.next() {
                assert!((1..=3).contains(&tail.len()), "{s:?}");
            }
            assert!(parts.next().is_none(), "{s:?}");
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(v) => 1 + v.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 3, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::seed_from_u64(5);
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4, "{t:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The proptest! macro itself: args bind, assume rejects, asserts run.
        #[test]
        fn macro_smoke(a in 0u32..10, b in any::<bool>()) {
            prop_assume!(a != 9);
            prop_assert!(a < 9);
            prop_assert_eq!(b, b);
        }
    }
}
