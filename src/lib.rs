//! # occam
//!
//! Umbrella crate for the Occam reproduction — a programming system for
//! reliable network management (EuroSys 2024).
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single package:
//!
//! - [`core`] — the programming model and runtime (network objects,
//!   `get`/`set`/`apply`, strict-2PL transactions, rollback suggestion).
//! - [`netdb`] — the source-of-truth network database.
//! - [`emunet`] — the emulated network data/control plane.
//! - [`topology`] — naming, Fat-trees, production scale.
//! - [`objtree`] — the network object tree and locking.
//! - [`sched`] — FIFO/LDSF lock scheduling.
//! - [`rollback`] — Table 1 grammar and plan generation.
//! - [`regex`] — the regex/automata engine for region scopes.
//! - [`obs`] — counters, histograms, spans, and the event ring
//!   (metrics contract in `DESIGN.md` §9).
//! - [`gateway`] — the management-plane service frontend: workflow
//!   catalog, wire protocol, admission-controlled execution engine, and
//!   TCP server/client (`DESIGN.md` §10).
//! - [`chaos`] — deterministic seeded fault campaigns asserting the
//!   fully-applied-or-fully-rolled-back recovery contract across every
//!   layer (`DESIGN.md` §11).
//! - [`update`] — consistent-update synthesis: config diff, invariant
//!   model checking over the emunet forwarding model, wave planning,
//!   and transactional wave execution (`DESIGN.md` §15).
//! - [`spec`] — the declarative workflow layer: a small desired-state
//!   spec language, a compiler lowering specs to rollback-grammar-
//!   conformant programs, and incremental compliance audits over the
//!   netdb view cache (`DESIGN.md` §17).
//! - [`cert`] — the online serializability certifier: per-task
//!   read/write footprints, conflict-graph maintenance, acyclicity
//!   checking over the live commit history (`DESIGN.md` §16).
//! - [`sim`] — the at-scale discrete-event simulator.
//! - [`workload`] — Meta-shaped trace synthesis.
//!
//! See the `examples/` directory for runnable management programs,
//! `crates/bench/src/bin/` for the experiment harness reproducing every
//! table and figure of the paper, and `EXPERIMENTS.md` for the measured
//! results.

pub use occam_cert as cert;
pub use occam_chaos as chaos;
pub use occam_core as core;
pub use occam_emunet as emunet;
pub use occam_gateway as gateway;
pub use occam_netdb as netdb;
pub use occam_objtree as objtree;
pub use occam_obs as obs;
pub use occam_regex as regex;
pub use occam_rollback as rollback;
pub use occam_sched as sched;
pub use occam_sim as sim;
pub use occam_spec as spec;
pub use occam_topology as topology;
pub use occam_update as update;
pub use occam_workload as workload;

pub use occam_core::{
    execute_rollback, Isolation, Network, Runtime, TaskCtx, TaskError, TaskReport, TaskResult,
    TaskState,
};

/// Builds a ready-to-use emulated deployment: a `k`-ary Fat-tree, a
/// database seeded with every switch (status `ACTIVE`, firmware 1.0) and
/// every switch-to-switch link (status `UP`), and a runtime wired to an
/// in-process device service.
///
/// This is the standard harness used by the examples and case studies.
/// The database and the runtime share one [`obs::Registry`], so
/// `runtime.obs()` carries the whole stack's `netdb.*` / `objtree.*` /
/// `sched.*` / `core.*` instruments (contract in `DESIGN.md` §9).
///
/// # Examples
///
/// ```
/// let (runtime, ft) = occam::emulated_deployment(1, 4);
/// assert_eq!(ft.all_switches().len(), 4 + 8 + 8);
/// let report = runtime.task("noop").run(|_| Ok(()));
/// assert_eq!(report.state, occam::TaskState::Completed);
/// assert_eq!(runtime.obs().counter_value("core.tasks.completed"), 1);
/// ```
pub fn emulated_deployment(dc: u32, k: u32) -> (occam_core::Runtime, occam_topology::FatTree) {
    use std::sync::Arc;
    let reg = occam_obs::Registry::new();
    let ft = occam_topology::FatTree::build(dc, k).expect("valid fat-tree arity");
    let db = Arc::new(occam_netdb::Database::with_obs(&reg));
    for (_, d) in ft
        .topo
        .devices()
        .filter(|(_, d)| d.role != occam_topology::Role::Host)
    {
        db.insert_device(
            &d.name,
            vec![
                (
                    occam_netdb::attrs::DEVICE_STATUS.into(),
                    occam_netdb::attrs::STATUS_ACTIVE.into(),
                ),
                (
                    occam_netdb::attrs::FIRMWARE_VERSION.into(),
                    "fw-1.0.0".into(),
                ),
            ],
        )
        .expect("fresh device");
    }
    // Mirror the fabric's switch-to-switch links in the database, all UP.
    for (_, l) in ft.topo.links() {
        if ft.topo.device(l.a_end).role == occam_topology::Role::Host
            || ft.topo.device(l.z_end).role == occam_topology::Role::Host
        {
            continue;
        }
        let a = &ft.topo.device(l.a_end).name;
        let z = &ft.topo.device(l.z_end).name;
        db.insert_link(
            a,
            z,
            vec![(
                occam_netdb::attrs::LINK_STATUS.into(),
                occam_netdb::attrs::UP.into(),
            )],
        )
        .expect("fresh link");
    }
    let service = Arc::new(occam_emunet::EmuService::new(
        occam_emunet::EmuNet::from_fattree(&ft),
    ));
    let runtime = occam_core::Runtime::with_obs(db, service, occam_sched::Policy::Ldsf, &reg);
    (runtime, ft)
}

/// Reaches the emulator service behind a runtime built by
/// [`emulated_deployment`] (for traffic setup and fault injection).
pub fn emu_service(runtime: &occam_core::Runtime) -> &occam_emunet::EmuService {
    runtime
        .service()
        .as_any()
        .downcast_ref::<occam_emunet::EmuService>()
        .expect("runtime built over EmuService")
}
